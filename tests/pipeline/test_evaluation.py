"""Unit tests for the cost-vs-quality evaluator."""

from __future__ import annotations

import pytest

from repro.network.cost import TelemetryCostAccountant
from repro.pipeline.evaluation import CostQualityEvaluator
from repro.pipeline.events import EventKind, inject_event
from repro.pipeline.policies import FixedRatePolicy, NyquistStaticPolicy
from repro.signals.generators import multi_tone
from repro.signals.noise import add_white_noise


@pytest.fixture
def reference(rng):
    trace = multi_tone([1.0 / 7200.0], duration=21600.0, sampling_rate=1.0 / 7.5,
                       amplitudes=[8.0], offset=40.0)
    return add_white_noise(trace, 0.05, rng=rng)


def make_evaluator():
    policies = [FixedRatePolicy(30.0, name="baseline"),
                NyquistStaticPolicy(production_interval=30.0)]
    return CostQualityEvaluator(policies, accountant=TelemetryCostAccountant())


class TestEvaluator:
    def test_requires_policies(self):
        with pytest.raises(ValueError):
            CostQualityEvaluator([])

    def test_requires_unique_names(self):
        with pytest.raises(ValueError):
            CostQualityEvaluator([FixedRatePolicy(30.0, name="x"),
                                  FixedRatePolicy(60.0, name="x")])

    def test_evaluate_point_produces_one_result_per_policy(self, reference):
        evaluator = make_evaluator()
        results = evaluator.evaluate_point("dev-1", "Link util", reference)
        assert len(results) == 2
        assert {r.policy_name for r in results} == {"baseline", "nyquist-static"}

    def test_rows_aggregate_over_points(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        evaluator.evaluate_point("dev-2", "Link util", reference)
        rows = evaluator.rows()
        assert len(rows) == 2
        assert all(row["points"] == 2.0 for row in rows)

    def test_nyquist_static_cheaper_than_baseline(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        relative = evaluator.relative_costs("baseline")
        assert relative["baseline"] == pytest.approx(1.0)
        assert relative["nyquist-static"] < 1.0

    def test_relative_costs_unknown_baseline(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        with pytest.raises(KeyError):
            evaluator.relative_costs("nope")

    def test_event_detection_scored(self, reference):
        evaluator = make_evaluator()
        modified, event = inject_event(reference, EventKind.STEP,
                                       reference.start_time + 0.7 * reference.duration,
                                       magnitude=30.0)
        results = evaluator.evaluate_point("dev-1", "Link util", modified, event)
        assert all(result.detection is not None for result in results)
        summary = evaluator.summaries["baseline"]
        assert summary.detection_rate == 1.0
        assert summary.mean_detection_latency >= 0.0

    def test_summary_quality_fields(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        row = evaluator.rows()[0]
        assert 0.0 <= row["mean_nrmse"] < 1.0
        assert row["samples"] > 0
        assert row["total_cost"] > 0


class TestColumnarStore:
    """The evaluator's canonical storage is columnar PolicyRecordBlocks."""

    def test_blocks_back_the_summaries(self, reference):
        evaluator = make_evaluator()
        evaluator.evaluate_point("dev-1", "Link util", reference)
        evaluator.evaluate_point("dev-2", "Link util", reference)
        blocks = list(evaluator.iter_blocks())
        assert len(blocks) == 4  # 2 points x 2 policies, one 1-row block each
        assert evaluator.sink.rows == 4
        assert {block.policy_name for block in blocks} == {"baseline", "nyquist-static"}
        summary = evaluator.summaries["baseline"]
        assert [entry.point_name for entry in summary.evaluations] == ["dev-1", "dev-2"]
        assert summary.total_samples == sum(
            int(block.samples.sum()) for block in blocks
            if block.policy_name == "baseline")

    def test_spilled_evaluator_round_trips(self, reference, tmp_path):
        from repro.records import SpillingRecordSink

        policies = [FixedRatePolicy(30.0, name="baseline"),
                    NyquistStaticPolicy(production_interval=30.0)]
        spilling = CostQualityEvaluator(policies, accountant=TelemetryCostAccountant(),
                                        sink=SpillingRecordSink(tmp_path / "spool"))
        memory = make_evaluator()
        for name in ("dev-1", "dev-2"):
            spilling.evaluate_point(name, "Link util", reference)
            memory.evaluate_point(name, "Link util", reference)
        for left, right in zip(spilling.rows(), memory.rows()):
            assert left.keys() == right.keys()
            for key in left:
                assert left[key] == pytest.approx(right[key], nan_ok=True), key

    def test_detection_round_trips_through_blocks(self, reference):
        evaluator = make_evaluator()
        modified, event = inject_event(reference, EventKind.STEP,
                                       reference.start_time + 0.7 * reference.duration,
                                       magnitude=30.0)
        results = evaluator.evaluate_point("dev-1", "Link util", modified, event)
        rebuilt = [entry for block in evaluator.iter_blocks()
                   for entry in block.to_evaluations()]
        assert [entry.detection for entry in rebuilt] == \
            [result.detection for result in results]


class TestRelativeCostGuards:
    def test_zero_baseline_raises_naming_the_policy(self, reference):
        """Satellite fix: a zero-cost baseline used to turn every policy's
        relative cost into nan; it must raise naming the baseline."""
        from repro.network.cost import CostModel

        free = TelemetryCostAccountant(cost_model=CostModel(
            bytes_per_sample=0.0, collection_cpu_us=0.0,
            transmission_cost_per_byte_hop=0.0, storage_cost_per_byte=0.0,
            analysis_cost_per_sample=0.0))
        evaluator = CostQualityEvaluator(
            [FixedRatePolicy(30.0, name="baseline")], accountant=free)
        evaluator.evaluate_point("dev-1", "Link util", reference)
        with pytest.raises(ValueError, match="'baseline'.*zero total cost"):
            evaluator.relative_costs("baseline")

    def test_no_points_evaluated_raises(self):
        evaluator = make_evaluator()
        with pytest.raises(ValueError, match="zero total cost"):
            evaluator.relative_costs("baseline")
