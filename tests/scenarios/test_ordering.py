"""The matrix's load-bearing cells, pinned.

Two kinds of pin, deliberately different in strength:

* The **stationary leaf-spine** cell is the paper's own operating point.
  It must reproduce fixed > nyquist-static > adaptive-dual-rate
  *bit for bit* against the golden summary (``repr`` floats -- any change
  in any layer of the policy stack shows up here first, on purpose).
* The **inversion cells** (flap-churn on every fabric, per
  ``BENCH_scenarios.json``) are asserted by *direction only*: the
  adaptive leg must cost at least as much as nyquist-static.  Their
  magnitudes are trajectories, not contracts.

Both run the exact presets from :mod:`repro.scenarios.presets`, the same
ones the bench freezes into ``BENCH_scenarios.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import evaluate_cell
from repro.scenarios.matrix import ADAPTIVE, FIXED, NYQUIST_STATIC
from repro.scenarios.presets import default_fabrics, default_scenarios, paper_suite

GOLDEN = Path(__file__).with_name("golden_stationary.json")

SCENARIOS = {scenario.name: scenario for scenario in default_scenarios()}


def _cell(scenario_name: str, fabric_name: str):
    spec = default_fabrics()[fabric_name]
    source = spec.open()
    return evaluate_cell(SCENARIOS[scenario_name], fabric_name, source,
                         source.accountant(), paper_suite())


@pytest.fixture(scope="module")
def stationary():
    return _cell("stationary", "leaf-spine")


class TestGoldenStationary:
    def test_reproduces_the_golden_summary_bit_for_bit(self, stationary):
        golden = json.loads(GOLDEN.read_text())
        assert stationary.scenario == golden["scenario"]
        assert stationary.fabric == golden["fabric"]
        assert stationary.points == golden["points"]
        assert stationary.verdict == golden["verdict"]
        assert stationary.holds_paper_ordering is golden["holds_paper_ordering"]
        for field in ("relative_costs", "total_costs", "mean_nrmse", "worst_nrmse"):
            measured = {key: repr(value)
                        for key, value in sorted(getattr(stationary, field).items())}
            assert measured == golden[field], f"{field} drifted from golden"

    def test_paper_ordering_holds(self, stationary):
        relative = stationary.relative_costs
        assert relative[FIXED] == 1.0
        assert relative[NYQUIST_STATIC] < 1.0
        assert relative[ADAPTIVE] < relative[NYQUIST_STATIC]
        assert stationary.holds_paper_ordering

    def test_no_shift_means_no_reaction_measurement(self, stationary):
        assert stationary.shift_time_s is None
        assert stationary.reprobe_latency_s is None
        assert stationary.resettle_latency_s is None


class TestInversionCells:
    """flap-churn: recurring regime churn from inside the controller's
    first window.  The controller never gets a quiet window to settle in,
    so the adaptive leg inverts -- direction asserted, never magnitude."""

    @pytest.mark.parametrize("fabric_name", ["leaf-spine", "wan-ring"])
    def test_flap_churn_inverts_the_adaptive_leg(self, fabric_name):
        cell = _cell("flap-churn", fabric_name)
        assert not cell.holds_paper_ordering
        assert cell.relative_costs[ADAPTIVE] >= cell.relative_costs[NYQUIST_STATIC]
        assert ADAPTIVE in cell.verdict and cell.verdict.startswith("inversion")
        # The flap onset is a real shift: recorded even when the
        # controller's reaction is unmeasurable because churn pre-dates
        # its first settle.
        assert cell.shift_time_s == pytest.approx(0.3 * 12 * 3600.0)

    def test_incident_reprobe_latency_is_measured(self):
        """The contrast cell: a post-settle shift keeps the ordering AND
        yields a measured steady -> probe transition latency."""
        cell = _cell("incident", "leaf-spine")
        assert cell.holds_paper_ordering
        assert cell.shift_time_s == pytest.approx(0.55 * 12 * 3600.0)
        assert cell.reprobe_latency_s is not None
        assert cell.reprobe_latency_s > 0.0
        assert cell.reprobe_fraction is not None
        assert cell.reprobe_fraction > 0.0
        # Re-probing shows up in the rate trajectory: the recorded pair
        # raises its rate after the shift.
        rates_before = [rate for t, rate in cell.adaptive_rate_trajectory
                        if t < cell.shift_time_s]
        rates_after = [rate for t, rate in cell.adaptive_rate_trajectory
                       if t >= cell.shift_time_s]
        assert rates_before and rates_after
        assert max(rates_after) > min(rates_before)
