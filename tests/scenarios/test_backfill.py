"""Late backfill at ingest: blackout-window arrival order must not matter."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.monitoring import DeploymentSpec
from repro.network.topology import TopologySpec
from repro.scenarios import BlackoutWindow, export_backfill_dump, shuffled_dump
from repro.telemetry.ingest import export_gnmi_dump, ingest_dump


@pytest.fixture(scope="module")
def source():
    spec = DeploymentSpec(
        topology=TopologySpec(num_spines=1, num_leaves=2, servers_per_leaf=1),
        trace_duration=2 * 3600.0, seed=23, oversample_factor=2.0)
    return spec.open()


def assert_same_fleet(a, b) -> None:
    """Two ingested directories hold identical fleets (traces bit for bit)."""
    manifest_a = json.loads((a.directory / "manifest.json").read_text())
    manifest_b = json.loads((b.directory / "manifest.json").read_text())
    for manifest in (manifest_a, manifest_b):
        manifest.pop("ingest", None)
        for entry in manifest["pairs"]:
            entry.pop("ingest", None)
    assert manifest_a == manifest_b
    for pair_a, pair_b in zip(a.pairs(), b.pairs()):
        trace_a, trace_b = a.load(pair_a), b.load(pair_b)
        assert trace_a.interval == trace_b.interval
        assert np.array_equal(trace_a.values, trace_b.values)


class TestBackfillDump:
    def test_defers_exactly_the_blackout_window(self, source, tmp_path):
        blackout = BlackoutWindow(start_fraction=0.5, duration_fraction=0.25)
        path, deferred = export_backfill_dump(source, tmp_path / "late.jsonl",
                                              blackout)
        total = sum(1 for _ in path.open())
        assert 0 < deferred < total
        # The deferred share tracks the window's duration fraction.
        assert deferred / total == pytest.approx(0.25, abs=0.05)
        # The late suffix really is out of order: the dump's timestamps
        # drop when the buffered window drains at the end.
        stamps = [json.loads(line)["timestamp"] for line in path.open()]
        assert stamps != sorted(stamps)
        assert stamps[-deferred:] == sorted(stamps[-deferred:])

    def test_same_update_set_as_in_order_export(self, source, tmp_path):
        blackout = BlackoutWindow(start_fraction=0.4, duration_fraction=0.2)
        in_order = export_gnmi_dump(source, tmp_path / "clean.jsonl")
        late, _ = export_backfill_dump(source, tmp_path / "late.jsonl", blackout)
        assert sorted(in_order.read_text().splitlines()) \
            == sorted(late.read_text().splitlines())

    def test_late_backfill_ingests_identically(self, source, tmp_path):
        """The importer's set-determinism absorbs the partition: in-order
        and late-backfill dumps build byte-identical fleets."""
        blackout = BlackoutWindow(start_fraction=0.5, duration_fraction=0.15)
        in_order = export_gnmi_dump(source, tmp_path / "clean.jsonl")
        late, _ = export_backfill_dump(source, tmp_path / "late.jsonl", blackout)
        clean = ingest_dump(in_order, tmp_path / "clean-fleet")
        backfilled = ingest_dump(late, tmp_path / "late-fleet",
                                 memory_budget_samples=128)
        assert_same_fleet(clean, backfilled)


class TestShuffleInvariance:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_any_arrival_order_ingests_identically(self, source, tmp_path, seed):
        """Ingesting an arbitrarily shuffled late-backfill dump reproduces
        the in-order fleet -- arrival order carries no information."""
        blackout = BlackoutWindow(start_fraction=0.3, duration_fraction=0.2)
        workdir = tmp_path / f"seed-{seed}"
        workdir.mkdir()
        in_order = export_gnmi_dump(source, workdir / "clean.jsonl")
        late, _ = export_backfill_dump(source, workdir / "late.jsonl", blackout)
        shuffled = shuffled_dump(late, workdir / "shuffled.jsonl", seed)
        clean = ingest_dump(in_order, workdir / "clean-fleet")
        chaotic = ingest_dump(shuffled, workdir / "shuffled-fleet",
                              memory_budget_samples=96)
        assert_same_fleet(clean, chaotic)

    def test_shuffled_dump_is_a_permutation(self, source, tmp_path):
        in_order = export_gnmi_dump(source, tmp_path / "clean.jsonl")
        shuffled = shuffled_dump(in_order, tmp_path / "shuffled.jsonl", seed=7)
        assert sorted(in_order.read_text().splitlines()) \
            == sorted(shuffled.read_text().splitlines())
        assert in_order.read_text() != shuffled.read_text()
