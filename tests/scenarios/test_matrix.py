"""Matrix harness mechanics: worker parity, worker specs, loud empty cells."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.policy_survey import run_policy_survey
from repro.network.monitoring import DeploymentSpec
from repro.network.topology import TopologySpec
from repro.scenarios import (DiurnalCycle, MatrixResult, RegimeShift, Scenario,
                             evaluate_cell, paper_suite)

INCIDENT = Scenario("incident", (DiurnalCycle(period=3600.0, amplitude=0.4),
                                 RegimeShift(shift_fraction=0.5,
                                             frequency_fraction=0.8, amplitude=2.0)))

#: Columns asserted byte-identical between worker counts.
_COLUMNS = ("device_ids", "samples", "mean_rate_hz", "nrmse", "max_abs_error",
            "hops", "collection_cpu_us", "transmission", "storage_bytes", "analysis")


@pytest.fixture(scope="module")
def spec():
    return DeploymentSpec(
        topology=TopologySpec(num_spines=1, num_leaves=2, servers_per_leaf=1),
        trace_duration=4 * 3600.0, seed=29, oversample_factor=2.0)


class TestWorkerParity:
    def test_scenario_survey_is_byte_identical_across_worker_counts(self, spec):
        """A scenario-wrapped source must keep the survey's worker-count
        byte-equivalence: transforms are pure and re-applied per worker."""
        suite = paper_suite()
        single_source = INCIDENT.wrap(spec.open())
        pooled_source = INCIDENT.wrap(spec.open())
        single = run_policy_survey(single_source, suite,
                                   accountant=single_source.inner.accountant(),
                                   chunk_size=16)
        pooled = run_policy_survey(pooled_source, suite,
                                   accountant=pooled_source.inner.accountant(),
                                   chunk_size=16, workers=2)
        blocks_a, blocks_b = list(single.iter_blocks()), list(pooled.iter_blocks())
        assert len(blocks_a) == len(blocks_b)
        for a, b in zip(blocks_a, blocks_b):
            assert (a.metric_name, a.policy_name) == (b.metric_name, b.policy_name)
            for column in _COLUMNS:
                assert np.array_equal(getattr(a, column), getattr(b, column),
                                      equal_nan=getattr(a, column).dtype == np.float64)

    def test_worker_spec_round_trip_serves_identical_traces(self, spec):
        wrapped = INCIDENT.wrap(spec.open())
        reopened = pickle.loads(pickle.dumps(wrapped.worker_spec())).open()
        for pair, clone in list(zip(wrapped.pairs(), reopened.pairs()))[:4]:
            assert pair.key == clone.key
            assert np.array_equal(wrapped.load(pair).values,
                                  reopened.load(clone).values)

    def test_content_token_folds_the_transform_stack(self, spec):
        """A record store must never serve one scenario's cached records to
        another: the token changes with the stack."""
        source = spec.open()
        wrapped = INCIDENT.wrap(source)
        calm = Scenario("calm").wrap(source)
        pair = source.pairs()[0]
        tokens = {source.pair_content_token(pair),
                  wrapped.pair_content_token(pair),
                  calm.pair_content_token(pair)}
        assert len(tokens) == 3


class TestLoudFailures:
    def test_zero_pair_cell_raises_with_the_cell_name(self, spec):
        class EmptySource:
            def pairs(self):
                return []

        source = spec.open()
        with pytest.raises(ValueError, match=r"ghost x leaf-spine.*zero"):
            evaluate_cell(Scenario("ghost"), "leaf-spine", EmptySource(),
                          source.accountant(), paper_suite())

    def test_missing_cell_lookup_raises_key_error(self):
        with pytest.raises(KeyError, match="no cell"):
            MatrixResult(cells=()).cell("stationary", "leaf-spine")


class TestCellPayload:
    def test_payload_round_trips_through_json(self, spec):
        import json

        source = spec.open()
        cell = evaluate_cell(INCIDENT, "leaf-spine", source, source.accountant(),
                             paper_suite())
        payload = json.loads(json.dumps(cell.to_payload()))
        assert payload["scenario"] == "incident"
        assert payload["fabric"] == "leaf-spine"
        assert set(payload["relative_costs"]) \
            == {"fixed", "nyquist-static", "adaptive-dual-rate"}
        assert payload["shift_time_s"] == pytest.approx(0.5 * 4 * 3600.0)
        assert isinstance(payload["holds_paper_ordering"], bool)
        assert payload["verdict"]
        # The trajectory is a list of [time, rate] points.
        assert all(len(point) == 2 for point in payload["adaptive_rate_trajectory"])
