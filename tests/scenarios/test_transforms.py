"""Property tests for the scenario transforms: pure, seeded, shape-preserving."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, stable_digest
from repro.scenarios import (BlackoutWindow, CounterPathology, DiurnalCycle,
                             FlappingRegime, RegimeShift, Scenario, apply_transforms)
from repro.signals.distortions import apply_data_fault

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

PAIRS = [("Link util", f"leaf-{i}") for i in range(4)] + \
        [("Temperature", f"spine-{i}") for i in range(4)]

finite_traces = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=4, max_size=200).map(lambda values: np.asarray(values, dtype=np.float64))

intervals = st.floats(min_value=1.0, max_value=600.0, allow_nan=False,
                      allow_infinity=False)

transform_instances = st.one_of(
    st.builds(DiurnalCycle,
              period=st.floats(min_value=600.0, max_value=86400.0),
              amplitude=st.floats(min_value=0.0, max_value=0.9),
              seed=st.integers(min_value=0, max_value=10)),
    st.builds(RegimeShift,
              shift_fraction=st.floats(min_value=0.05, max_value=0.95),
              frequency_fraction=st.floats(min_value=0.1, max_value=1.0),
              amplitude=st.floats(min_value=0.1, max_value=5.0),
              seed=st.integers(min_value=0, max_value=10)),
    st.builds(FlappingRegime,
              onset_fraction=st.floats(min_value=0.05, max_value=0.95),
              period=st.floats(min_value=600.0, max_value=8 * 3600.0),
              duty=st.floats(min_value=0.1, max_value=0.9),
              frequency_fraction=st.floats(min_value=0.1, max_value=1.0),
              amplitude=st.floats(min_value=0.1, max_value=5.0),
              seed=st.integers(min_value=0, max_value=10)),
    st.builds(CounterPathology,
              fraction=st.floats(min_value=0.0, max_value=1.0),
              window_fraction=st.floats(min_value=0.05, max_value=0.9),
              seed=st.integers(min_value=0, max_value=10)),
    st.builds(BlackoutWindow,
              start_fraction=st.floats(min_value=0.0, max_value=0.5),
              duration_fraction=st.floats(min_value=0.05, max_value=0.5)),
)


class TestTransformProperties:
    @FAST
    @given(transform=transform_instances, values=finite_traces, interval=intervals)
    def test_pure_shape_preserving_and_deterministic(self, transform, values, interval):
        """Same inputs -> same output; input untouched; geometry preserved."""
        before = values.copy()
        a = transform.apply(values, interval, "Link util", "leaf-0")
        b = transform.apply(values, interval, "Link util", "leaf-0")
        assert np.array_equal(values, before), "transform mutated its input"
        assert a.shape == values.shape
        assert np.array_equal(a, b)

    @FAST
    @given(transform=transform_instances, values=finite_traces, interval=intervals)
    def test_pickle_round_trip_preserves_output(self, transform, values, interval):
        """A worker re-opening the spec must regenerate identical traces."""
        clone = pickle.loads(pickle.dumps(transform))
        assert clone == transform
        assert np.array_equal(transform.apply(values, interval, "FCS errors", "sw-1"),
                              clone.apply(values, interval, "FCS errors", "sw-1"))

    @FAST
    @given(values=finite_traces, interval=intervals,
           seed=st.integers(min_value=0, max_value=10))
    def test_phase_varies_per_pair(self, values, interval, seed):
        """Digest seeding keys on (metric, device): pairs get distinct phases."""
        cycle = DiurnalCycle(period=3600.0, amplitude=0.5, seed=seed)
        phases = {
            float(np.sum(cycle.apply(np.ones_like(values), interval, metric, device)))
            for metric, device in PAIRS}
        assert len(phases) > 1

    def test_apply_transforms_rejects_shape_changes(self):
        class Truncating(DiurnalCycle):
            def apply(self, values, interval, metric_name, device_id):
                return values[:-1]

        with pytest.raises(ValueError, match="changed the trace shape"):
            apply_transforms([Truncating()], np.ones(8), 1.0, "Link util", "leaf-0")


class TestHashSeedIndependence:
    def test_transforms_survive_process_hash_randomisation(self):
        """Scenario output must not lean on builtin hash(): regenerate the
        same transformed traces in a child process running under a
        different PYTHONHASHSEED."""
        transforms = (DiurnalCycle(period=3600.0, amplitude=0.4, seed=3),
                      RegimeShift(shift_fraction=0.5, frequency_fraction=0.8,
                                  amplitude=2.0, seed=3),
                      CounterPathology(seed=3))
        values = np.linspace(0.0, 50.0, 64)
        expected = [
            repr(apply_transforms(transforms, values, 30.0, metric, device).sum())
            for metric, device in PAIRS]
        script = (
            "import numpy as np\n"
            "from repro.scenarios import (DiurnalCycle, RegimeShift, CounterPathology,\n"
            "                             apply_transforms)\n"
            "transforms = (DiurnalCycle(period=3600.0, amplitude=0.4, seed=3),\n"
            "              RegimeShift(shift_fraction=0.5, frequency_fraction=0.8,\n"
            "                          amplitude=2.0, seed=3),\n"
            "              CounterPathology(seed=3))\n"
            "values = np.linspace(0.0, 50.0, 64)\n"
            f"pairs = {PAIRS!r}\n"
            "print(';'.join(repr(apply_transforms(transforms, values, 30.0, m, d).sum())\n"
            "               for m, d in pairs))\n")
        env = dict(os.environ, PYTHONHASHSEED="424242",
                   PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip().split(";") == expected


class TestCounterPathologyPromotion:
    def test_assignment_rule_matches_fault_plan(self):
        """The promoted pathology keeps FaultPlan's digest assignment rule:
        same seed, same kinds, same fraction -> same pair -> kind map."""
        kinds = ("counter-wrap", "device-reboot")
        pathology = CounterPathology(kinds=kinds, fraction=0.5, seed=13)
        plan = FaultPlan(seed=13, fraction=0.5, kinds=kinds)
        assert ([pathology.kind_for(m, d) for m, d in PAIRS]
                == [plan.kind_for(m, d) for m, d in PAIRS])

    def test_distortion_matches_canonical_placement(self):
        """Afflicted pairs suffer exactly apply_data_fault's seeded placement."""
        pathology = CounterPathology(fraction=1.0, window_fraction=0.2, seed=5)
        values = np.cumsum(np.ones(100))
        for metric, device in PAIRS:
            kind = pathology.kind_for(metric, device)
            assert kind is not None
            rng = np.random.default_rng(stable_digest(5, "rng", metric, device))
            expected = apply_data_fault(kind, values, rng, window_fraction=0.2)
            assert np.array_equal(
                pathology.apply(values, 1.0, metric, device), expected)

    def test_zero_fraction_afflicts_no_pair(self):
        pathology = CounterPathology(fraction=0.0)
        assert all(pathology.kind_for(m, d) is None for m, d in PAIRS)
        values = np.arange(32, dtype=np.float64)
        assert np.array_equal(pathology.apply(values, 1.0, "Link util", "leaf-0"),
                              values)


class TestValidation:
    @pytest.mark.parametrize("factory", [
        lambda: DiurnalCycle(period=0.0),
        lambda: DiurnalCycle(amplitude=1.0),
        lambda: RegimeShift(shift_fraction=0.0),
        lambda: RegimeShift(shift_fraction=1.0),
        lambda: RegimeShift(frequency_fraction=0.0),
        lambda: RegimeShift(amplitude=0.0),
        lambda: FlappingRegime(onset_fraction=0.0),
        lambda: FlappingRegime(period=0.0),
        lambda: FlappingRegime(duty=1.0),
        lambda: CounterPathology(kinds=()),
        lambda: CounterPathology(kinds=("martian-attack",)),
        lambda: CounterPathology(fraction=1.5),
        lambda: BlackoutWindow(start_fraction=1.0),
        lambda: BlackoutWindow(duration_fraction=0.0),
        lambda: BlackoutWindow(start_fraction=0.9, duration_fraction=0.2),
        lambda: Scenario(""),
    ])
    def test_bad_parameters_raise(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_regime_shift_at_exact_nyquist_is_phase_degenerate(self):
        """Document why the presets put tones at 0.8 of Nyquist, not 1.0:
        a sine sampled exactly at Nyquist collapses to (-1)^k sin(phase),
        so an unlucky phase erases the incident entirely."""
        values = np.zeros(128)
        shift = RegimeShift(shift_fraction=0.25, frequency_fraction=1.0,
                            amplitude=2.0, seed=0)
        out = shift.apply(values, 1.0, "Link util", "leaf-0")
        tail = out[64:]
        # At exact Nyquist every sample has the same magnitude |sin(phase)|.
        assert np.allclose(np.abs(tail), np.abs(tail[0]))


class TestScenario:
    def test_shift_time_scans_for_the_first_shifted_transform(self):
        incident = Scenario("incident", (DiurnalCycle(), RegimeShift(shift_fraction=0.5)))
        churn = Scenario("churn", (FlappingRegime(onset_fraction=0.25),))
        calm = Scenario("calm", (DiurnalCycle(),))
        assert incident.shift_time(1000.0) == pytest.approx(500.0)
        assert churn.shift_time(1000.0) == pytest.approx(250.0)
        assert calm.shift_time(1000.0) is None

    def test_blackout_accessor(self):
        window = BlackoutWindow(start_fraction=0.5, duration_fraction=0.1)
        assert Scenario("b", (window,)).blackout() == window
        assert Scenario("s").blackout() is None
