"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.survey import run_survey
from repro.core.errors import compare, l2_distance
from repro.core.nyquist import NyquistEstimator, estimate_nyquist_rate
from repro.core.psd import periodogram
from repro.core.quantization import UniformQuantizer
from repro.core.resampling import downsample, fourier_resample, regularize
from repro.signals.generators import multi_tone, sine
from repro.signals.timeseries import IrregularTimeSeries, TimeSeries
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import export_gnmi_dump, export_snmp_dump, ingest_dump

# FFT-heavy properties: keep example counts modest so the suite stays fast.
FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


finite_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2, max_size=200)

intervals = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False)


@FAST
@given(values=finite_values, interval=intervals)
def test_timeseries_duration_consistency(values, interval):
    series = TimeSeries(np.array(values), interval)
    assert series.duration == pytest.approx(len(values) * interval, rel=1e-9)
    assert series.sampling_rate == pytest.approx(1.0 / interval, rel=1e-9)


@FAST
@given(values=finite_values, interval=intervals, factor=st.integers(min_value=1, max_value=10))
def test_decimation_length_and_rate(values, interval, factor):
    series = TimeSeries(np.array(values), interval)
    decimated = series.decimate(factor)
    assert len(decimated) == math.ceil(len(series) / factor)
    assert decimated.interval == pytest.approx(interval * factor)
    # Decimated samples are a subset of the original samples.
    assert set(np.round(decimated.values, 9)) <= set(np.round(series.values, 9))


@FAST
@given(values=finite_values, interval=intervals)
def test_window_partition_preserves_samples(values, interval):
    series = TimeSeries(np.array(values), interval)
    midpoint = series.start_time + series.duration / 2.0
    left = series.window(series.start_time, midpoint)
    right = series.window(midpoint, series.end_time + interval)
    assert len(left) + len(right) == len(series)


@FAST
@given(values=finite_values, interval=intervals)
def test_periodogram_energy_is_non_negative_and_finite(values, interval):
    series = TimeSeries(np.array(values), interval)
    spectrum = periodogram(series)
    assert np.all(spectrum.power >= 0)
    assert np.all(np.isfinite(spectrum.power))
    assert spectrum.max_frequency == pytest.approx(series.sampling_rate / 2.0)


@FAST
@given(values=finite_values, interval=intervals,
       fraction=st.floats(min_value=0.5, max_value=1.0))
def test_energy_cutoff_is_monotone_in_fraction(values, interval, fraction):
    series = TimeSeries(np.array(values), interval)
    spectrum = periodogram(series)
    low = spectrum.energy_cutoff_frequency(fraction * 0.9)
    high = spectrum.energy_cutoff_frequency(fraction)
    if low is not None and high is not None:
        assert high >= low


@FAST
@given(frequency=st.floats(min_value=0.5, max_value=10.0),
       rate_multiplier=st.floats(min_value=4.0, max_value=20.0))
def test_nyquist_estimate_bounded_by_sampling_rate(frequency, rate_multiplier):
    series = sine(frequency, duration=20.0 / frequency,
                  sampling_rate=frequency * rate_multiplier)
    estimate = estimate_nyquist_rate(series)
    if estimate.reliable:
        assert 0 < estimate.nyquist_rate <= series.sampling_rate + 1e-9
        assert estimate.reduction_ratio >= 1.0 - 1e-9


@FAST
@given(frequency=st.floats(min_value=0.5, max_value=5.0))
def test_nyquist_estimate_close_to_twice_tone_frequency(frequency):
    series = sine(frequency, duration=30.0 / frequency, sampling_rate=frequency * 30.0)
    estimate = estimate_nyquist_rate(series)
    assert estimate.reliable
    assert estimate.nyquist_rate == pytest.approx(2.0 * frequency, rel=0.15)


@FAST
@given(energy_fraction=st.floats(min_value=0.5, max_value=0.999))
def test_nyquist_estimate_monotone_in_energy_fraction(energy_fraction):
    series = multi_tone([2.0, 11.0], duration=8.0, sampling_rate=64.0,
                        amplitudes=[1.0, 0.2])
    low = NyquistEstimator(energy_fraction=energy_fraction * 0.8).estimate(series)
    high = NyquistEstimator(energy_fraction=energy_fraction).estimate(series)
    if low.reliable and high.reliable:
        assert high.nyquist_rate >= low.nyquist_rate - 1e-9


@FAST
@given(values=finite_values, interval=intervals,
       step=st.floats(min_value=1e-3, max_value=100.0))
def test_quantization_error_bounded_by_half_step(values, interval, step):
    series = TimeSeries(np.array(values), interval)
    quantized = UniformQuantizer(step).apply_series(series)
    assert np.max(np.abs(quantized.values - series.values)) <= step / 2.0 + 1e-9


@FAST
@given(values=finite_values, interval=intervals)
def test_compare_identical_series_is_exact(values, interval):
    series = TimeSeries(np.array(values), interval)
    error = compare(series, series)
    assert error.is_exact()
    assert error.l2 == 0.0


@FAST
@given(values=finite_values, interval=intervals,
       offset=st.floats(min_value=-10.0, max_value=10.0))
def test_l2_distance_is_symmetric_and_triangleish(values, interval, offset):
    series = TimeSeries(np.array(values), interval)
    shifted = series + offset
    assert l2_distance(series, shifted) == pytest.approx(l2_distance(shifted, series))
    assert l2_distance(series, shifted) == pytest.approx(abs(offset) * math.sqrt(len(series)),
                                                         rel=1e-6, abs=1e-6)


@FAST
@given(length=st.integers(min_value=16, max_value=400),
       target=st.integers(min_value=16, max_value=400))
def test_fourier_resample_preserves_duration_and_mean(length, target):
    rng = np.random.default_rng(length * 1000 + target)
    values = rng.normal(size=length).cumsum()  # smooth-ish signal
    series = TimeSeries(values, 1.0)
    resampled = fourier_resample(series, target)
    assert len(resampled) == target
    assert resampled.duration == pytest.approx(series.duration, rel=1e-9)
    assert resampled.mean() == pytest.approx(series.mean(), rel=0.05, abs=0.5)


@FAST
@given(factor=st.sampled_from([2, 4, 5, 8, 10, 16, 20]),
       cycles=st.integers(min_value=1, max_value=12))
def test_downsample_upsample_roundtrip_for_band_limited_signals(factor, cycles):
    # A tone completing an integer number of cycles (so the FFT's periodic
    # extension is exact), decimated by a factor that divides the trace
    # length (so the decimated trace keeps the same period) and band-limited
    # well below the post-decimation Nyquist frequency: the round trip must
    # be (nearly) lossless.  Factors that do not divide the length shorten
    # the trace and are covered, more loosely, by the reconstruction tests.
    duration = 400.0
    frequency = cycles / duration
    series = sine(frequency, duration=duration, sampling_rate=2.0)
    down = downsample(series, factor, anti_alias=True)
    up = fourier_resample(down, len(series))
    n = min(len(up), len(series))
    rms_error = float(np.sqrt(np.mean((up.values[:n] - series.values[:n]) ** 2)))
    assert rms_error < 0.02


# ----------------------------------------------------------------------
# Ingest round trips: arbitrary fleet -> raw dump -> ingest -> survey
# ----------------------------------------------------------------------
# End-to-end FFT + process-pool heavy: a handful of examples suffices, the
# deterministic corpus lives in tests/telemetry/test_ingest.py.
INGEST = settings(max_examples=6, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])

#: Metric mixes spanning every generative family.
INGEST_METRIC_POOLS = (
    ("Temperature", "Unicast bytes", "FCS errors"),
    ("Link util", "Multicast drops"),
    ("Lossy paths", "Peak egress BW", "Memory usage"),
)


def _assert_nan_aware_equal(left: float, right: float, context: str) -> None:
    assert left == right or (math.isnan(left) and math.isnan(right)), context


@INGEST
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       pair_count=st.integers(min_value=3, max_value=10),
       metrics=st.sampled_from(INGEST_METRIC_POOLS),
       exporter=st.sampled_from([export_gnmi_dump, export_snmp_dump]),
       broadband=st.sampled_from([0.0, 0.25]))
def test_export_ingest_survey_round_trip(seed, pair_count, metrics, exporter,
                                         broadband):
    """Any fleet, either wire format: the ingested directory surveys
    bit-identically to the in-memory fleet, at 1 and 2 workers."""
    fleet = FleetDataset(DatasetConfig(pair_count=pair_count, seed=seed,
                                       trace_duration=3600.0, metrics=metrics,
                                       broadband_fraction=broadband))
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        dump = exporter(fleet, tmp_path / "dump")
        ingested = ingest_dump(dump, tmp_path / "fleet",
                               memory_budget_samples=257)
        assert len(ingested) == len(fleet)

        reference = run_survey(fleet)
        single = run_survey(ingested, chunk_size=4)
        pooled = run_survey(ingested, workers=2, chunk_size=4)

        # workers=1 and workers=2 on the ingested fleet: byte-identical
        # blocks, order included.
        single_blocks = list(single.iter_blocks())
        pooled_blocks = list(pooled.iter_blocks())
        assert len(single_blocks) == len(pooled_blocks) > 0
        for a, b in zip(single_blocks, pooled_blocks):
            assert a.metric_name == b.metric_name
            assert np.array_equal(a.device_ids, b.device_ids)
            assert np.array_equal(a.current_rate, b.current_rate)
            assert np.array_equal(a.nyquist_rate, b.nyquist_rate)
            assert np.array_equal(a.reduction_ratio, b.reduction_ratio, equal_nan=True)
            assert np.array_equal(a.category, b.category)
            assert np.array_equal(a.reliable, b.reliable)

        # Against the originating fleet: the same records bit for bit,
        # aligned by (metric, device) key -- an ingested manifest lists
        # pairs in canonical sorted order, the synthetic fleet in its own
        # seeded order.
        by_key = {(r.metric_name, r.device_id): r for r in reference.records}
        ingested_records = single.records
        assert len(ingested_records) == len(by_key)
        for record in ingested_records:
            expected = by_key.pop((record.metric_name, record.device_id))
            context = f"{record.metric_name}@{record.device_id}"
            assert record.current_rate == expected.current_rate, context
            assert record.nyquist_rate == expected.nyquist_rate, context
            _assert_nan_aware_equal(record.reduction_ratio,
                                    expected.reduction_ratio, context)
            assert record.category is expected.category, context
            assert record.reliable == expected.reliable, context
            assert record.trace_duration == expected.trace_duration, context
        assert not by_key

        # Order-insensitive aggregations agree exactly.
        for result in (single, pooled):
            headline = result.headline()
            for key, value in reference.headline().items():
                _assert_nan_aware_equal(value, headline[key], key)


@FAST
@given(n=st.integers(min_value=10, max_value=200),
       interval=st.floats(min_value=0.5, max_value=10.0),
       jitter=st.floats(min_value=0.0, max_value=0.2))
def test_regularize_produces_regular_series_of_similar_span(n, interval, jitter):
    rng = np.random.default_rng(n)
    timestamps = np.sort(np.arange(n) * interval + rng.uniform(-jitter, jitter, size=n) * interval)
    values = rng.normal(size=n)
    irregular = IrregularTimeSeries(timestamps, values)
    regular = regularize(irregular)
    assert regular.interval > 0
    assert abs(regular.duration - irregular.duration) <= 2 * regular.interval + 1e-6
    # Every regularised value is one of the observed values (nearest neighbour).
    assert set(np.round(regular.values, 9)) <= set(np.round(values, 9))
