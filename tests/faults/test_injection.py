"""Unit tests for :mod:`repro.faults.inject` (applying a fault plan)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.faults import (FaultInjectingSourceSpec, FaultInjectingTraceSource,
                          FaultPlan, corrupt_dump_lines, faulty_export)
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import export_gnmi_dump, export_snmp_dump
from repro.telemetry.measured import MeasuredFleetDataset


@pytest.fixture(scope="module")
def fleet():
    return FleetDataset(DatasetConfig(pair_count=28, seed=5))


def pair_named(source, kind, plan):
    """First pair of ``source`` the plan assigns ``kind`` (skip-if-none)."""
    for pair in source.pairs():
        metric_name, device_id = pair.key
        if plan.kind_for(metric_name, device_id) == kind:
            return pair
    pytest.skip(f"seeded plan assigned no {kind!r} pair in this fleet")


class TestFaultInjectingTraceSource:
    def test_healthy_pairs_pass_through_untouched(self, fleet):
        plan = FaultPlan(seed=1, fraction=0.2, kinds=("corrupt-trace",))
        chaotic = FaultInjectingTraceSource(fleet, plan)
        for pair in fleet.pairs():
            if plan.affects(*pair.key):
                continue
            assert np.array_equal(chaotic.load(pair).values,
                                  fleet.load(pair).values)

    def test_shape_metadata_is_delegated(self, fleet):
        chaotic = FaultInjectingTraceSource(fleet, FaultPlan(seed=1))
        assert chaotic.metric_names() == fleet.metric_names()
        assert len(chaotic.pairs()) == len(fleet.pairs())
        assert chaotic.trace_duration == fleet.trace_duration

    @pytest.mark.parametrize("kind", ["corrupt-trace", "truncated-trace"])
    def test_file_faults_raise_value_error(self, fleet, kind):
        plan = FaultPlan(seed=2, fraction=0.3, kinds=(kind,))
        chaotic = FaultInjectingTraceSource(fleet, plan)
        pair = pair_named(fleet, kind, plan)
        with pytest.raises(ValueError, match="corrupt or truncated trace file"):
            chaotic.load(pair)

    def test_io_error_recovers_after_the_budget(self, fleet, tmp_path):
        plan = FaultPlan(seed=3, fraction=0.3, kinds=("io-error",),
                         io_error_opens=1, state_dir=str(tmp_path))
        chaotic = FaultInjectingTraceSource(fleet, plan)
        pair = pair_named(fleet, "io-error", plan)
        with pytest.raises(OSError, match="injected transient IO error"):
            chaotic.load(pair)
        assert np.array_equal(chaotic.load(pair).values,
                              fleet.load(pair).values)

    @pytest.mark.parametrize("kind", ["counter-wrap", "device-reboot", "blackout"])
    def test_data_faults_distort_without_breaking_shape(self, fleet, kind):
        plan = FaultPlan(seed=4, fraction=0.4, kinds=(kind,))
        chaotic = FaultInjectingTraceSource(fleet, plan)
        pair = pair_named(fleet, kind, plan)
        clean, dirty = fleet.load(pair), chaotic.load(pair)
        assert dirty.values.shape == clean.values.shape
        assert dirty.interval == clean.interval
        assert not np.array_equal(dirty.values, clean.values)
        again = chaotic.load(pair)
        assert np.array_equal(dirty.values, again.values)

    def test_worker_spec_round_trips_the_chaos(self, fleet, tmp_path):
        exported = faulty_export(fleet, tmp_path / "fleet", FaultPlan(fraction=0.0))
        assert isinstance(exported, MeasuredFleetDataset)
        plan = FaultPlan(seed=5, fraction=0.3, kinds=("corrupt-trace",))
        chaotic = FaultInjectingTraceSource(exported, plan)
        spec = pickle.loads(pickle.dumps(chaotic.worker_spec()))
        assert isinstance(spec, FaultInjectingSourceSpec)
        reopened = spec.open()
        pair = pair_named(reopened, "corrupt-trace", plan)
        with pytest.raises(ValueError, match="corrupt or truncated"):
            reopened.load(pair)

    def test_crash_slices_never_fire_in_the_parent(self, fleet, tmp_path):
        metric = fleet.metric_names()[0]
        plan = FaultPlan(seed=6, fraction=0.0, crash_slices=((metric, 0),),
                         state_dir=str(tmp_path))
        chaotic = FaultInjectingTraceSource(fleet, plan)
        batches = list(chaotic.trace_batches(metric, chunk_size=4))
        assert batches  # still alive: os._exit is pool-worker-only
        assert not any(tmp_path.iterdir())  # crash budget untouched


class TestFaultyExport:
    def test_damaged_files_fail_loudly_healthy_files_bit_identical(
            self, fleet, tmp_path):
        plan = FaultPlan(seed=7, fraction=0.3,
                         kinds=("corrupt-trace", "truncated-trace"))
        dataset = faulty_export(fleet, tmp_path / "fleet", plan)
        damaged = healthy = 0
        for pair in dataset.pairs():
            if plan.kind_for(pair.metric_name, pair.device.device_id):
                damaged += 1
                with pytest.raises(ValueError):
                    dataset.load(pair)
            else:
                healthy += 1
                twin = next(p for p in fleet.pairs()
                            if p.key == (pair.metric_name, pair.device.device_id))
                assert np.array_equal(dataset.load(pair).values,
                                      fleet.load(twin).values)
        assert damaged > 0 and healthy > 0

    def test_zero_fraction_export_is_clean(self, fleet, tmp_path):
        dataset = faulty_export(fleet, tmp_path / "fleet", FaultPlan(fraction=0.0))
        for pair in dataset.pairs():
            dataset.load(pair)  # nothing raises


class TestCorruptDumpLines:
    @pytest.mark.parametrize("exporter", [export_gnmi_dump, export_snmp_dump])
    def test_mangles_every_nth_line_and_reports_them(
            self, fleet, tmp_path, exporter):
        clean = tmp_path / "clean.dump"
        dirty = tmp_path / "dirty.dump"
        exporter(fleet, clean, metrics=fleet.metric_names()[:2])
        plan = FaultPlan(malformed_line_every=37)
        mangled = corrupt_dump_lines(clean, dirty, plan)
        assert mangled
        assert mangled == [n for n in mangled if n % 37 == 0]
        clean_lines = clean.read_text().splitlines()
        dirty_lines = dirty.read_text().splitlines()
        assert len(clean_lines) == len(dirty_lines)
        for number, (a, b) in enumerate(zip(clean_lines, dirty_lines), start=1):
            if number in mangled:
                assert b.startswith("!corrupted! ")
                assert number > 1  # header / first line never touched
            else:
                assert a == b
