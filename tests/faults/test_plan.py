"""Unit tests for :mod:`repro.faults.plan` (seeded fault assignment)."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.faults import DATA_FAULT_KINDS, FAULT_KINDS, FaultPlan

PAIRS = [(metric, f"dev-{index:03d}")
         for metric in ("Link util", "Temperature", "CPU")
         for index in range(60)]


class TestAssignment:
    def test_assignment_is_a_pure_function_of_the_plan(self):
        left = FaultPlan(seed=7, fraction=0.1, kinds=FAULT_KINDS[:2])
        right = FaultPlan(seed=7, fraction=0.1, kinds=FAULT_KINDS[:2])
        assert ([left.kind_for(m, d) for m, d in PAIRS]
                == [right.kind_for(m, d) for m, d in PAIRS])

    def test_different_seeds_shuffle_the_fault_list(self):
        a = FaultPlan(seed=1, fraction=0.2)
        b = FaultPlan(seed=2, fraction=0.2)
        assert ([a.kind_for(m, d) for m, d in PAIRS]
                != [b.kind_for(m, d) for m, d in PAIRS])

    def test_fraction_bounds_coverage(self):
        none = FaultPlan(seed=3, fraction=0.0)
        assert not any(none.affects(m, d) for m, d in PAIRS)
        everyone = FaultPlan(seed=3, fraction=1.0, kinds=DATA_FAULT_KINDS)
        assert all(everyone.affects(m, d) for m, d in PAIRS)

    def test_fraction_is_roughly_honoured(self):
        plan = FaultPlan(seed=11, fraction=0.25, kinds=DATA_FAULT_KINDS)
        hit = sum(plan.affects(m, d) for m, d in PAIRS)
        assert 0.10 * len(PAIRS) <= hit <= 0.45 * len(PAIRS)

    def test_kinds_are_drawn_from_the_plan(self):
        plan = FaultPlan(seed=5, fraction=0.5, kinds=("blackout", "counter-wrap"))
        drawn = {plan.kind_for(m, d) for m, d in PAIRS} - {None}
        assert drawn == {"blackout", "counter-wrap"}

    def test_pickle_round_trip_preserves_assignment(self):
        plan = FaultPlan(seed=9, fraction=0.15, kinds=FAULT_KINDS[:2])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert ([plan.kind_for(m, d) for m, d in PAIRS]
                == [clone.kind_for(m, d) for m, d in PAIRS])

    def test_assignment_survives_process_hash_randomisation(self):
        """The digest must not lean on builtin hash(): check in a child
        process running under a different PYTHONHASHSEED."""
        kinds = ("corrupt-trace", "truncated-trace", "blackout")
        plan = FaultPlan(seed=21, fraction=0.3, kinds=kinds)
        expected = [repr(plan.kind_for(m, d)) for m, d in PAIRS[:20]]
        script = (
            "from repro.faults import FaultPlan\n"
            f"plan = FaultPlan(seed=21, fraction=0.3, kinds={kinds!r})\n"
            f"pairs = {PAIRS[:20]!r}\n"
            "print(';'.join(repr(plan.kind_for(m, d)) for m, d in pairs))\n")
        env = dict(os.environ, PYTHONHASHSEED="424242",
                   PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip().split(";") == expected

    def test_rng_for_is_deterministic_per_pair(self):
        plan = FaultPlan(seed=4)
        a = plan.rng_for("Link util", "dev-1").integers(0, 10 ** 9, size=8)
        b = plan.rng_for("Link util", "dev-1").integers(0, 10 ** 9, size=8)
        c = plan.rng_for("Link util", "dev-2").integers(0, 10 ** 9, size=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_corrupts_every_nth_line(self):
        plan = FaultPlan(malformed_line_every=10)
        mangled = [n for n in range(1, 51) if plan.corrupts_line(n)]
        assert mangled == [10, 20, 30, 40, 50]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"fraction": -0.1},
        {"fraction": 1.5},
        {"kinds": ("corrupt-trace", "martian-attack")},
        {"io_error_opens": 0},
        {"blackout_fraction": 0.0},
        {"blackout_fraction": 1.0},
        {"malformed_line_every": 1},
        {"kinds": ("io-error",)},                 # needs state_dir
        {"crash_slices": (("Link util", 0),)},    # needs state_dir
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_stateful_kinds_accept_a_state_dir(self, tmp_path):
        FaultPlan(kinds=("io-error",), state_dir=str(tmp_path))
        FaultPlan(crash_slices=(("Link util", 0),), state_dir=str(tmp_path))


class TestOnceOnlyState:
    def test_io_error_budget_counts_opens(self, tmp_path):
        plan = FaultPlan(kinds=("io-error",), io_error_opens=2,
                         state_dir=str(tmp_path))
        flips = [plan.consume_io_error("Link util", "dev-1") for _ in range(4)]
        assert flips == [True, True, False, False]

    def test_io_error_state_is_shared_across_plan_instances(self, tmp_path):
        """Marker files, not in-memory counters: a re-created plan (the
        pickled copy a pool worker opens) sees the opens already spent."""
        first = FaultPlan(kinds=("io-error",), io_error_opens=1,
                          state_dir=str(tmp_path))
        assert first.consume_io_error("Link util", "dev-1")
        clone = pickle.loads(pickle.dumps(first))
        assert not clone.consume_io_error("Link util", "dev-1")

    def test_io_error_budgets_are_per_pair(self, tmp_path):
        plan = FaultPlan(kinds=("io-error",), io_error_opens=1,
                         state_dir=str(tmp_path))
        assert plan.consume_io_error("Link util", "dev-1")
        assert plan.consume_io_error("Link util", "dev-2")
        assert not plan.consume_io_error("Link util", "dev-1")

    def test_crash_fires_exactly_once_per_slice(self, tmp_path):
        plan = FaultPlan(crash_slices=(("Link util", 0), ("Link util", 8)),
                         state_dir=str(tmp_path))
        assert plan.consume_crash("Link util", 0)
        assert not plan.consume_crash("Link util", 0)
        assert plan.consume_crash("Link util", 8)

    def test_stateful_calls_without_state_dir_are_errors(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="state_dir"):
            plan.consume_io_error("Link util", "dev-1")
        with pytest.raises(ValueError, match="state_dir"):
            plan.consume_crash("Link util", 0)
