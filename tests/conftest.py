"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals.generators import multi_tone, sine
from repro.signals.timeseries import TimeSeries
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def sine_1hz() -> TimeSeries:
    """A 1 Hz sine sampled at 50 Hz for 10 seconds (Nyquist rate exactly 2 Hz)."""
    return sine(1.0, duration=10.0, sampling_rate=50.0)


@pytest.fixture
def two_tone() -> TimeSeries:
    """The paper's Figure 3 signal: 400 Hz + 440 Hz tones at 2 kHz."""
    return multi_tone([400.0, 440.0], duration=1.0, sampling_rate=2000.0)


@pytest.fixture
def slow_metric_trace() -> TimeSeries:
    """A slow, datacenter-metric-like trace: one cycle every 4 hours, polled every 30 s."""
    return multi_tone([1.0 / 14400.0], duration=86400.0, sampling_rate=1.0 / 30.0,
                      amplitudes=[10.0], offset=50.0)


@pytest.fixture
def temperature_trace(rng) -> TimeSeries:
    """One day of synthetic temperature telemetry at the production rate."""
    from repro.telemetry.models import generate_trace

    spec = METRIC_CATALOG["Temperature"]
    device = DeviceProfile("test-tor-1", DeviceRole.TOR_SWITCH, seed=99)
    params = draw_metric_parameters(spec, device, 86400.0, broadband_fraction=0.0,
                                    rng=np.random.default_rng(99))
    return generate_trace(spec, params, 86400.0, rng=rng, device_name=device.device_id)


@pytest.fixture(scope="session")
def small_dataset() -> FleetDataset:
    """A small survey dataset shared by dataset/survey tests (42 pairs, 3 per metric)."""
    return FleetDataset(DatasetConfig(pair_count=42, seed=5))
