"""Unit tests for noise models and SNR helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.signals import noise
from repro.signals.generators import sine


class TestWhiteNoise:
    def test_statistics(self, rng):
        series = noise.white_noise(100.0, 10.0, std=2.0, mean=5.0, rng=rng)
        assert series.mean() == pytest.approx(5.0, abs=0.3)
        assert series.std() == pytest.approx(2.0, abs=0.3)

    def test_rejects_negative_std(self, rng):
        with pytest.raises(ValueError):
            noise.white_noise(1.0, 10.0, std=-1.0, rng=rng)

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ValueError):
            noise.white_noise(0.0, 10.0, rng=rng)

    def test_add_white_noise_zero_std_is_identity(self, sine_1hz, rng):
        assert noise.add_white_noise(sine_1hz, 0.0, rng=rng) is sine_1hz

    def test_add_white_noise_changes_values(self, sine_1hz, rng):
        noisy = noise.add_white_noise(sine_1hz, 0.5, rng=rng)
        assert not np.allclose(noisy.values, sine_1hz.values)
        assert len(noisy) == len(sine_1hz)

    def test_add_white_noise_rejects_negative(self, sine_1hz, rng):
        with pytest.raises(ValueError):
            noise.add_white_noise(sine_1hz, -0.1, rng=rng)


class TestSnr:
    def test_add_noise_snr_hits_target(self, rng):
        clean = sine(1.0, 50.0, 20.0, amplitude=5.0)
        noisy = noise.add_noise_snr(clean, 20.0, rng=rng)
        assert noise.snr_db(clean, noisy) == pytest.approx(20.0, abs=1.5)

    def test_snr_of_identical_series_is_infinite(self, sine_1hz):
        assert noise.snr_db(sine_1hz, sine_1hz) == math.inf

    def test_snr_rejects_length_mismatch(self, sine_1hz):
        with pytest.raises(ValueError):
            noise.snr_db(sine_1hz, sine_1hz.head(10))

    def test_add_noise_snr_constant_signal_unchanged(self, rng):
        from repro.signals.generators import constant
        flat = constant(5.0, 10.0, 10.0)
        assert noise.add_noise_snr(flat, 10.0, rng=rng) is flat


class TestPinkNoise:
    def test_pink_noise_std(self, rng):
        series = noise.pink_noise(100.0, 10.0, std=1.5, rng=rng)
        assert series.std() == pytest.approx(1.5, rel=0.05)

    def test_pink_noise_is_low_frequency_heavy(self, rng):
        from repro.core.psd import periodogram
        series = noise.pink_noise(200.0, 10.0, rng=rng)
        spectrum = periodogram(series).without_dc()
        half = spectrum.max_frequency / 2.0
        assert spectrum.energy_fraction_below(half) > 0.6

    def test_pink_noise_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            noise.pink_noise(0.0, 10.0, rng=rng)


class TestNoiseFloor:
    def test_median_floor(self):
        power = np.array([1.0, 1.0, 1.0, 100.0])
        assert noise.noise_floor_estimate(power) == pytest.approx(1.0)

    def test_empty_power(self):
        assert noise.noise_floor_estimate(np.empty(0)) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            noise.noise_floor_estimate(np.array([1.0]), quantile=1.5)
