"""Unit tests for the synthetic signal generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import generators


class TestTimeAxis:
    def test_sample_count(self):
        series = generators.constant(1.0, duration=10.0, sampling_rate=5.0)
        assert len(series) == 50
        assert series.interval == pytest.approx(0.2)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            generators.constant(1.0, duration=0.0, sampling_rate=5.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            generators.constant(1.0, duration=1.0, sampling_rate=0.0)


class TestBasicWaveforms:
    def test_constant_is_flat(self):
        series = generators.constant(3.5, 1.0, 10.0)
        assert series.value_range() == 0.0
        assert series.mean() == pytest.approx(3.5)

    def test_sine_amplitude_and_offset(self):
        series = generators.sine(2.0, duration=5.0, sampling_rate=100.0,
                                 amplitude=3.0, offset=10.0)
        assert series.max() <= 13.0 + 1e-9
        assert series.min() >= 7.0 - 1e-9
        assert series.mean() == pytest.approx(10.0, abs=0.05)

    def test_sine_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            generators.sine(-1.0, 1.0, 10.0)

    def test_sine_frequency_is_where_the_energy_is(self):
        from repro.core.psd import periodogram
        series = generators.sine(5.0, duration=2.0, sampling_rate=100.0)
        spectrum = periodogram(series)
        assert spectrum.without_dc().dominant_frequency() == pytest.approx(5.0, abs=0.5)

    def test_multi_tone_length_checks(self):
        with pytest.raises(ValueError):
            generators.multi_tone([], 1.0, 10.0)
        with pytest.raises(ValueError):
            generators.multi_tone([1.0, 2.0], 1.0, 10.0, amplitudes=[1.0])

    def test_two_tone_figure3_has_880hz_nyquist(self):
        from repro.core.nyquist import estimate_nyquist_rate
        series = generators.two_tone_figure3()
        estimate = estimate_nyquist_rate(series)
        assert estimate.reliable
        assert estimate.nyquist_rate == pytest.approx(880.0, rel=0.01)

    def test_square_wave_levels(self):
        series = generators.square_wave(1.0, 2.0, 100.0, amplitude=2.0)
        assert set(np.unique(series.values)) <= {-2.0, 2.0}

    def test_square_wave_rejects_bad_duty_cycle(self):
        with pytest.raises(ValueError):
            generators.square_wave(1.0, 1.0, 10.0, duty_cycle=1.5)

    def test_sawtooth_range(self):
        series = generators.sawtooth(1.0, 2.0, 100.0, amplitude=1.0)
        assert series.min() >= -1.0 - 1e-9
        assert series.max() <= 1.0 + 1e-9

    def test_chirp_rejects_negative_frequencies(self):
        with pytest.raises(ValueError):
            generators.chirp(-1.0, 5.0, 1.0, 100.0)

    def test_chirp_sweeps_upwards(self):
        from repro.core.psd import periodogram
        series = generators.chirp(1.0, 20.0, duration=4.0, sampling_rate=200.0)
        early = periodogram(series.head(len(series) // 4)).without_dc().dominant_frequency()
        late = periodogram(series.tail(len(series) // 4)).without_dc().dominant_frequency()
        assert late > early


class TestNoiseLikeGenerators:
    def test_band_limited_noise_respects_band(self, rng):
        from repro.core.psd import periodogram
        series = generators.band_limited_noise(5.0, duration=10.0, sampling_rate=100.0, rng=rng)
        spectrum = periodogram(series)
        in_band = spectrum.energy_fraction_below(5.5)
        assert in_band > 0.99

    def test_band_limited_noise_amplitude(self, rng):
        series = generators.band_limited_noise(5.0, 10.0, 100.0, amplitude=3.0, rng=rng)
        assert series.max() <= 3.0 + 1e-9
        assert series.min() >= -3.0 - 1e-9

    def test_band_limited_noise_rejects_band_above_nyquist(self, rng):
        with pytest.raises(ValueError):
            generators.band_limited_noise(60.0, 1.0, 100.0, rng=rng)

    def test_random_walk_is_reproducible(self):
        a = generators.random_walk(10.0, 10.0, rng=np.random.default_rng(1))
        b = generators.random_walk(10.0, 10.0, rng=np.random.default_rng(1))
        np.testing.assert_allclose(a.values, b.values)

    def test_step_signal(self):
        series = generators.step_signal(10.0, 1.0, step_time=5.0, low=0.0, high=2.0)
        assert series.values[0] == 0.0
        assert series.values[-1] == 2.0
        assert np.count_nonzero(series.values == 2.0) == 5

    def test_impulse_train_spike_count(self):
        series = generators.impulse_train(10.0, 10.0, period=2.0, amplitude=5.0)
        assert np.count_nonzero(series.values == 5.0) == 5

    def test_impulse_train_rejects_bad_period(self):
        with pytest.raises(ValueError):
            generators.impulse_train(10.0, 10.0, period=0.0)

    def test_diurnal_pattern_period(self):
        series = generators.diurnal_pattern(2 * 86400.0, 1.0 / 600.0, base=50.0, daily_swing=10.0)
        # The value one day apart should match (the pattern repeats daily).
        one_day = int(86400.0 / series.interval)
        np.testing.assert_allclose(series.values[:one_day], series.values[one_day:2 * one_day],
                                   atol=1e-9)
