"""Unit tests for the time/frequency-domain filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import filters
from repro.signals.generators import multi_tone, sine
from repro.signals.timeseries import TimeSeries


class TestFftFilters:
    def test_low_pass_removes_high_tone(self):
        series = multi_tone([1.0, 20.0], duration=4.0, sampling_rate=100.0)
        filtered = filters.low_pass_fft(series, cutoff_hz=5.0)
        reference = sine(1.0, duration=4.0, sampling_rate=100.0)
        assert np.max(np.abs(filtered.values - reference.values)) < 0.05

    def test_low_pass_keeps_dc(self):
        series = sine(10.0, 2.0, 100.0, offset=7.0)
        filtered = filters.low_pass_fft(series, cutoff_hz=1.0)
        assert filtered.mean() == pytest.approx(7.0, abs=0.01)

    def test_low_pass_rejects_negative_cutoff(self, sine_1hz):
        with pytest.raises(ValueError):
            filters.low_pass_fft(sine_1hz, -1.0)

    def test_low_pass_empty_series(self):
        empty = TimeSeries(np.empty(0), 1.0)
        assert len(filters.low_pass_fft(empty, 1.0)) == 0

    def test_high_pass_removes_low_tone(self):
        series = multi_tone([1.0, 20.0], duration=4.0, sampling_rate=100.0)
        filtered = filters.high_pass_fft(series, cutoff_hz=5.0)
        reference = sine(20.0, duration=4.0, sampling_rate=100.0)
        assert np.max(np.abs(filtered.values - reference.values)) < 0.05

    def test_high_pass_keep_dc_option(self):
        series = sine(1.0, 2.0, 100.0, offset=5.0)
        without_dc = filters.high_pass_fft(series, cutoff_hz=2.0)
        with_dc = filters.high_pass_fft(series, cutoff_hz=2.0, keep_dc=True)
        assert without_dc.mean() == pytest.approx(0.0, abs=0.01)
        assert with_dc.mean() == pytest.approx(5.0, abs=0.01)

    def test_low_then_high_pass_partition_energy(self):
        series = multi_tone([1.0, 20.0], duration=4.0, sampling_rate=100.0)
        low = filters.low_pass_fft(series, 5.0)
        high = filters.high_pass_fft(series, 5.0)
        np.testing.assert_allclose(low.values + high.values, series.values, atol=1e-9)


class TestSmoothingFilters:
    def test_moving_average_flattens_noise(self, rng):
        from repro.signals.noise import add_white_noise
        clean = sine(0.5, 20.0, 50.0)
        noisy = add_white_noise(clean, 0.5, rng=rng)
        smoothed = filters.moving_average(noisy, 15)
        assert np.mean((smoothed.values - clean.values) ** 2) < np.mean((noisy.values - clean.values) ** 2)

    def test_moving_average_window_one_is_identity(self, sine_1hz):
        assert filters.moving_average(sine_1hz, 1) is sine_1hz

    def test_moving_average_rejects_bad_window(self, sine_1hz):
        with pytest.raises(ValueError):
            filters.moving_average(sine_1hz, 0)

    def test_median_filter_removes_spike(self):
        values = np.zeros(21)
        values[10] = 100.0
        series = TimeSeries(values, 1.0)
        filtered = filters.median_filter(series, 5)
        assert filtered.max() == 0.0

    def test_median_filter_preserves_step(self):
        values = np.concatenate([np.zeros(10), np.ones(10)])
        series = TimeSeries(values, 1.0)
        filtered = filters.median_filter(series, 3)
        assert set(np.unique(filtered.values)) <= {0.0, 1.0}

    def test_exponential_smoothing_bounds(self):
        series = TimeSeries([0.0, 10.0, 10.0, 10.0], 1.0)
        smoothed = filters.exponential_smoothing(series, alpha=0.5)
        np.testing.assert_allclose(smoothed.values, [0.0, 5.0, 7.5, 8.75])

    def test_exponential_smoothing_alpha_one_is_identity(self, sine_1hz):
        smoothed = filters.exponential_smoothing(sine_1hz, alpha=1.0)
        np.testing.assert_allclose(smoothed.values, sine_1hz.values)

    def test_exponential_smoothing_rejects_bad_alpha(self, sine_1hz):
        with pytest.raises(ValueError):
            filters.exponential_smoothing(sine_1hz, alpha=0.0)
