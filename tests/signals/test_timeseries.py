"""Unit tests for the TimeSeries / IrregularTimeSeries containers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.signals.timeseries import IrregularTimeSeries, TimeSeries


def make_series(n=10, interval=1.0, start=0.0):
    return TimeSeries(np.arange(n, dtype=float), interval, start_time=start, name="t")


class TestTimeSeriesConstruction:
    def test_basic_properties(self):
        series = make_series(10, interval=0.5)
        assert len(series) == 10
        assert series.sampling_rate == pytest.approx(2.0)
        assert series.duration == pytest.approx(5.0)
        assert series.end_time == pytest.approx(5.0)

    def test_values_are_float64(self):
        series = TimeSeries([1, 2, 3], 1.0)
        assert series.values.dtype == np.float64

    def test_accepts_list_input(self):
        series = TimeSeries([1.0, 2.0], 2.0)
        assert len(series) == 2

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0], 0.0)
        with pytest.raises(ValueError):
            TimeSeries([1.0], -1.0)

    def test_rejects_infinite_interval(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0], math.inf)

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError):
            TimeSeries(np.zeros((2, 2)), 1.0)

    def test_rejects_non_finite_start(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0], 1.0, start_time=math.nan)

    def test_empty_series(self):
        series = TimeSeries(np.empty(0), 1.0)
        assert len(series) == 0
        assert series.is_empty()
        assert series.duration == 0.0


class TestTimeSeriesStatistics:
    def test_mean_std_min_max(self):
        series = make_series(5)
        assert series.mean() == pytest.approx(2.0)
        assert series.min() == 0.0
        assert series.max() == 4.0
        assert series.value_range() == 4.0
        assert series.std() == pytest.approx(np.std([0, 1, 2, 3, 4]))

    def test_energy_and_power(self):
        series = TimeSeries([3.0, 4.0], 1.0)
        assert series.energy() == pytest.approx(25.0)
        assert series.power() == pytest.approx(12.5)

    def test_empty_series_stats_are_nan(self):
        series = TimeSeries(np.empty(0), 1.0)
        assert math.isnan(series.mean())
        assert series.value_range() == 0.0


class TestTimeSeriesTiming:
    def test_times(self):
        series = make_series(3, interval=2.0, start=10.0)
        np.testing.assert_allclose(series.times(), [10.0, 12.0, 14.0])

    def test_shift_time(self):
        series = make_series(3).shift_time(5.0)
        assert series.start_time == 5.0

    def test_window_selects_half_open_interval(self):
        series = make_series(10)
        window = series.window(2.0, 5.0)
        np.testing.assert_allclose(window.values, [2.0, 3.0, 4.0])
        assert window.start_time == pytest.approx(2.0)

    def test_window_outside_range_is_empty(self):
        series = make_series(5)
        assert len(series.window(100.0, 200.0)) == 0

    def test_window_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            make_series(5).window(3.0, 1.0)

    def test_iter_windows_covers_series(self):
        series = make_series(10)
        windows = list(series.iter_windows(5.0, 5.0))
        assert len(windows) == 2
        assert all(len(window) == 5 for window in windows)

    def test_iter_windows_with_overlap(self):
        series = make_series(10)
        windows = list(series.iter_windows(4.0, 2.0))
        assert len(windows) == 4
        assert windows[1].start_time == pytest.approx(2.0)

    def test_iter_windows_rejects_bad_args(self):
        with pytest.raises(ValueError):
            list(make_series(10).iter_windows(0.0, 1.0))


class TestTimeSeriesTransforms:
    def test_with_values_keeps_timing(self):
        series = make_series(3, interval=2.0)
        updated = series.with_values([9.0, 9.0, 9.0])
        assert updated.interval == 2.0
        np.testing.assert_allclose(updated.values, 9.0)

    def test_detrend_removes_mean(self):
        series = make_series(5)
        assert make_series(5).detrend().mean() == pytest.approx(0.0)
        # original untouched (immutability)
        assert series.mean() == pytest.approx(2.0)

    def test_map_applies_function(self):
        doubled = make_series(3).map(lambda values: values * 2)
        np.testing.assert_allclose(doubled.values, [0.0, 2.0, 4.0])

    def test_clip(self):
        clipped = make_series(5).clip(1.0, 3.0)
        assert clipped.min() == 1.0
        assert clipped.max() == 3.0

    def test_head_and_tail(self):
        series = make_series(6)
        assert len(series.head(2)) == 2
        tail = series.tail(2)
        np.testing.assert_allclose(tail.values, [4.0, 5.0])
        assert tail.start_time == pytest.approx(4.0)

    def test_head_rejects_negative(self):
        with pytest.raises(ValueError):
            make_series(3).head(-1)

    def test_segment(self):
        segment = make_series(10).segment(3, 6)
        np.testing.assert_allclose(segment.values, [3.0, 4.0, 5.0])
        assert segment.start_time == pytest.approx(3.0)

    def test_segment_clamps_to_length(self):
        segment = make_series(4).segment(2, 100)
        assert len(segment) == 2

    def test_decimate(self):
        decimated = make_series(10).decimate(3)
        np.testing.assert_allclose(decimated.values, [0.0, 3.0, 6.0, 9.0])
        assert decimated.interval == pytest.approx(3.0)

    def test_decimate_factor_one_is_identity(self):
        series = make_series(5)
        assert len(series.decimate(1)) == 5

    def test_decimate_rejects_zero(self):
        with pytest.raises(ValueError):
            make_series(5).decimate(0)

    def test_concatenate(self):
        joined = make_series(3).concatenate(make_series(2))
        assert len(joined) == 5

    def test_concatenate_rejects_different_interval(self):
        with pytest.raises(ValueError):
            make_series(3, interval=1.0).concatenate(make_series(3, interval=2.0))

    def test_to_irregular_round_trip(self):
        series = make_series(4, interval=2.0, start=1.0)
        irregular = series.to_irregular()
        assert isinstance(irregular, IrregularTimeSeries)
        np.testing.assert_allclose(irregular.timestamps, [1.0, 3.0, 5.0, 7.0])


class TestTimeSeriesArithmetic:
    def test_add_scalar(self):
        series = make_series(3) + 10.0
        np.testing.assert_allclose(series.values, [10.0, 11.0, 12.0])

    def test_add_series(self):
        total = make_series(3) + make_series(3)
        np.testing.assert_allclose(total.values, [0.0, 2.0, 4.0])

    def test_subtract(self):
        diff = make_series(3) - make_series(3)
        np.testing.assert_allclose(diff.values, 0.0)

    def test_multiply(self):
        scaled = make_series(3) * 3.0
        np.testing.assert_allclose(scaled.values, [0.0, 3.0, 6.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            make_series(3) + make_series(4)


class TestIrregularTimeSeries:
    def test_sorts_by_timestamp(self):
        series = IrregularTimeSeries([3.0, 1.0, 2.0], [30.0, 10.0, 20.0])
        np.testing.assert_allclose(series.timestamps, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(series.values, [10.0, 20.0, 30.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            IrregularTimeSeries([1.0, 2.0], [1.0])

    def test_median_interval(self):
        series = IrregularTimeSeries([0.0, 1.0, 2.1, 3.0], [0.0] * 4)
        assert series.median_interval() == pytest.approx(1.0, abs=0.2)

    def test_median_interval_requires_two_samples(self):
        with pytest.raises(ValueError):
            IrregularTimeSeries([1.0], [1.0]).median_interval()

    def test_is_regular(self):
        regular = IrregularTimeSeries([0.0, 1.0, 2.0], [0.0] * 3)
        jittered = IrregularTimeSeries([0.0, 1.5, 2.0], [0.0] * 3)
        assert regular.is_regular()
        assert not jittered.is_regular()

    def test_dedupe_keeps_first(self):
        series = IrregularTimeSeries([0.0, 1.0, 1.0, 2.0], [0.0, 1.0, 99.0, 2.0])
        deduped = series.dedupe()
        assert len(deduped) == 3
        assert 99.0 not in deduped.values

    def test_window(self):
        series = IrregularTimeSeries([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0])
        window = series.window(1.0, 3.0)
        np.testing.assert_allclose(window.values, [1.0, 2.0])

    def test_duration(self):
        series = IrregularTimeSeries([5.0, 15.0], [0.0, 1.0])
        assert series.duration == pytest.approx(10.0)
