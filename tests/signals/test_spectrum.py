"""Unit tests for the Spectrum container and its energy accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals.spectrum import Spectrum


def make_spectrum(power=None, frequencies=None, fs=10.0):
    if frequencies is None:
        frequencies = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
    if power is None:
        power = np.array([100.0, 8.0, 1.0, 0.5, 0.3, 0.2])
    return Spectrum(np.asarray(frequencies, float), np.asarray(power, float), fs)


class TestSpectrumConstruction:
    def test_basic(self):
        spectrum = make_spectrum()
        assert len(spectrum) == 6
        assert spectrum.max_frequency == pytest.approx(5.0)
        assert spectrum.resolution == pytest.approx(1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Spectrum([0.0, 1.0], [1.0], 10.0)

    def test_rejects_descending_frequencies(self):
        with pytest.raises(ValueError):
            Spectrum([1.0, 0.5], [1.0, 1.0], 10.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Spectrum([0.0, 1.0], [1.0, -1.0], 10.0)

    def test_rejects_bad_sampling_rate(self):
        with pytest.raises(ValueError):
            Spectrum([0.0], [1.0], 0.0)

    def test_tiny_negative_power_clamped_to_zero(self):
        spectrum = Spectrum([0.0, 1.0], [1.0, -1e-15], 10.0)
        assert spectrum.power[1] == 0.0


class TestEnergyAccounting:
    def test_total_energy_excludes_dc_by_default(self):
        spectrum = make_spectrum()
        assert spectrum.total_energy() == pytest.approx(10.0)
        assert spectrum.total_energy(include_dc=True) == pytest.approx(110.0)

    def test_without_dc(self):
        spectrum = make_spectrum().without_dc()
        assert spectrum.frequencies[0] == 1.0
        assert len(spectrum) == 5

    def test_without_dc_is_noop_when_no_dc_bin(self):
        spectrum = Spectrum([1.0, 2.0], [1.0, 1.0], 10.0)
        assert len(spectrum.without_dc()) == 2

    def test_energy_below(self):
        spectrum = make_spectrum()
        assert spectrum.energy_below(2.0) == pytest.approx(9.0)

    def test_energy_fraction_below(self):
        spectrum = make_spectrum()
        assert spectrum.energy_fraction_below(2.0) == pytest.approx(0.9)

    def test_energy_fraction_below_empty_spectrum(self):
        spectrum = Spectrum(np.empty(0), np.empty(0), 10.0)
        assert spectrum.energy_fraction_below(1.0) == 0.0

    def test_cutoff_frequency_simple(self):
        spectrum = make_spectrum()
        # Non-DC cumulative fractions: 0.8 @1Hz, 0.9 @2Hz, 0.95 @3Hz, 0.98 @4Hz, 1.0 @5Hz.
        assert spectrum.energy_cutoff_frequency(0.99) == pytest.approx(5.0)
        assert spectrum.energy_cutoff_frequency(0.98) == pytest.approx(4.0)
        assert spectrum.energy_cutoff_frequency(0.9) == pytest.approx(2.0)
        assert spectrum.energy_cutoff_frequency(0.5) == pytest.approx(1.0)

    def test_cutoff_frequency_zero_energy(self):
        spectrum = Spectrum([0.0, 1.0], [0.0, 0.0], 10.0)
        assert spectrum.energy_cutoff_frequency(0.99) is None

    def test_cutoff_frequency_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            make_spectrum().energy_cutoff_frequency(0.0)
        with pytest.raises(ValueError):
            make_spectrum().energy_cutoff_frequency(1.5)

    def test_cumulative_energy_monotone(self):
        cumulative = make_spectrum().cumulative_energy()
        assert np.all(np.diff(cumulative) >= 0)


class TestSpectrumUtilities:
    def test_dominant_frequency(self):
        assert make_spectrum().dominant_frequency() == pytest.approx(1.0)
        assert make_spectrum().dominant_frequency(include_dc=True) == pytest.approx(0.0)

    def test_dominant_frequency_empty(self):
        assert Spectrum(np.empty(0), np.empty(0), 1.0).dominant_frequency() is None

    def test_band_selects_inclusive_range(self):
        band = make_spectrum().band(1.0, 3.0)
        np.testing.assert_allclose(band.frequencies, [1.0, 2.0, 3.0])

    def test_band_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            make_spectrum().band(3.0, 1.0)

    def test_normalized_sums_to_one(self):
        normalized = make_spectrum().normalized()
        assert normalized.total_energy() == pytest.approx(1.0)

    def test_interpolate_power(self):
        spectrum = Spectrum([0.0, 1.0, 2.0], [0.0, 2.0, 4.0], 10.0)
        np.testing.assert_allclose(spectrum.interpolate_power([0.5, 1.5]), [1.0, 3.0])

    def test_interpolate_power_empty(self):
        spectrum = Spectrum(np.empty(0), np.empty(0), 10.0)
        np.testing.assert_allclose(spectrum.interpolate_power([1.0, 2.0]), [0.0, 0.0])
