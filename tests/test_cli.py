"""Tests for the repro-monitor command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_survey_defaults(self):
        args = build_parser().parse_args(["survey"])
        assert args.command == "survey"
        assert args.pairs == 280

    def test_adaptive_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adaptive", "--metric", "NotAMetric"])


class TestSurveyCommand:
    def test_survey_runs_and_writes_csvs(self, tmp_path, capsys):
        exit_code = main(["survey", "--pairs", "28", "--seed", "3",
                          "--csv-dir", str(tmp_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Headline statistics" in output
        assert (tmp_path / "figure1_oversampled_fraction.csv").exists()
        assert (tmp_path / "figure4_reduction_ratios.csv").exists()
        assert (tmp_path / "figure5_nyquist_rates.csv").exists()


class TestAdaptiveCommand:
    def test_adaptive_runs(self, capsys):
        exit_code = main(["adaptive", "--metric", "Temperature", "--days", "1",
                          "--window-hours", "6", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Adaptive controller collected" in output
        assert "Nyquist round trip" in output


class TestEstimateCommand:
    def test_estimate_from_csv(self, tmp_path, capsys):
        # A 0.01 Hz tone sampled every 5 s for an hour.
        times = np.arange(0, 3600.0, 5.0)
        values = 10.0 + 3.0 * np.sin(2 * np.pi * 0.01 * times)
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,value\n" +
                        "\n".join(f"{t},{v}" for t, v in zip(times, values)))
        exit_code = main(["estimate", str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "nyquist rate" in output
        assert "reduction ratio" in output

    def test_estimate_rejects_tiny_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.csv"
        path.write_text("timestamp,value\n0,1\n")
        assert main(["estimate", str(path)]) == 1
