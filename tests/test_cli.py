"""Tests for the repro-monitor command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_survey_defaults(self):
        args = build_parser().parse_args(["survey"])
        assert args.command == "survey"
        assert args.pairs == 280
        assert args.backend == "batched"
        assert args.limit_per_metric is None

    def test_survey_backend_choices(self):
        assert build_parser().parse_args(["survey", "--backend", "scalar"]).backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["survey", "--backend", "gpu"])

    def test_adaptive_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adaptive", "--metric", "NotAMetric"])


class TestSurveyCommand:
    def test_survey_runs_and_writes_csvs(self, tmp_path, capsys):
        exit_code = main(["survey", "--pairs", "28", "--seed", "3",
                          "--csv-dir", str(tmp_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Headline statistics" in output
        assert (tmp_path / "figure1_oversampled_fraction.csv").exists()
        assert (tmp_path / "figure4_reduction_ratios.csv").exists()
        assert (tmp_path / "figure5_nyquist_rates.csv").exists()

    def test_survey_backends_agree(self, capsys):
        assert main(["survey", "--pairs", "28", "--seed", "3", "--backend", "scalar"]) == 0
        scalar_output = capsys.readouterr().out
        assert main(["survey", "--pairs", "28", "--seed", "3", "--backend", "batched"]) == 0
        batched_output = capsys.readouterr().out
        assert scalar_output == batched_output

    def test_survey_limit_per_metric(self, capsys):
        assert main(["survey", "--pairs", "84", "--limit-per-metric", "1"]) == 0
        output = capsys.readouterr().out
        assert "Surveyed 14 metric-device pairs" in output

    def test_survey_spill_dir(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert main(["survey", "--pairs", "28", "--seed", "3", "--chunk-size", "4",
                     "--spill-dir", str(spool)]) == 0
        output = capsys.readouterr().out
        assert "spilled" in output
        assert list(spool.glob("records-*.npz"))

    def test_survey_workers_match_single_process(self, capsys):
        assert main(["survey", "--pairs", "28", "--seed", "3", "--workers", "1"]) == 0
        single_output = capsys.readouterr().out
        assert main(["survey", "--pairs", "28", "--seed", "3", "--workers", "2"]) == 0
        pooled_output = capsys.readouterr().out
        assert single_output == pooled_output

    def test_survey_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["survey", "--workers", "0"])


POLICY_DEMO_ARGS = ["policies", "--leaves", "2", "--servers-per-leaf", "1",
                    "--duration-hours", "6", "--adaptive-window-hours", "2"]


class TestPoliciesCommand:
    @staticmethod
    def parse_relative(output: str) -> dict[str, float]:
        relative = {}
        lines = output.splitlines()
        start = next(i for i, line in enumerate(lines) if "relative to" in line)
        for line in lines[start + 1:]:
            parts = line.split()
            if len(parts) == 2 and parts[1].endswith("x"):
                relative[parts[0]] = float(parts[1][:-1])
        return relative

    def test_policies_demo_reproduces_cost_ordering(self, capsys):
        """Acceptance: the demo deployment reproduces the paper's relative
        cost ordering fixed > Nyquist-static > adaptive."""
        assert main(POLICY_DEMO_ARGS) == 0
        output = capsys.readouterr().out
        assert "Cost vs quality per policy" in output
        relative = self.parse_relative(output)
        assert relative["fixed"] == 1.0
        assert relative["nyquist-static"] < 1.0
        assert relative["adaptive-dual-rate"] < relative["nyquist-static"]

    def test_policies_workers_match_single_process(self, capsys):
        assert main([*POLICY_DEMO_ARGS, "--workers", "1"]) == 0
        single_output = capsys.readouterr().out
        assert main([*POLICY_DEMO_ARGS, "--workers", "2"]) == 0
        pooled_output = capsys.readouterr().out
        assert single_output == pooled_output

    def test_policies_spill_dir(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert main([*POLICY_DEMO_ARGS, "--metrics", "Temperature", "Link util",
                     "--chunk-size", "2", "--spill-dir", str(spool)]) == 0
        assert "spilled" in capsys.readouterr().out
        assert list(spool.glob("records-*.npz"))

    def test_policies_csv_dir(self, tmp_path, capsys):
        assert main([*POLICY_DEMO_ARGS, "--metrics", "Temperature",
                     "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "policy_cost_quality.csv").exists()

    def test_policies_from_dir(self, tmp_path, capsys):
        fleet_dir = tmp_path / "fleet"
        assert main(["export-fleet", str(fleet_dir), "--pairs", "14", "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["policies", "--from-dir", str(fleet_dir), "--workers", "2",
                     "--adaptive-window-hours", "4"]) == 0
        output = capsys.readouterr().out
        assert "measured fleet" in output
        relative = self.parse_relative(output)
        assert relative["fixed"] == 1.0
        assert relative["nyquist-static"] < 1.0

    def test_policies_from_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["policies", "--from-dir", str(tmp_path / "nope")]) == 1
        assert "manifest.json" in capsys.readouterr().err

    def test_policies_bad_parameters_fail_cleanly(self, capsys):
        """Regression: bad --oversample/--adaptive-window-hours used to
        escape as raw tracebacks (spec built outside the error handler)."""
        assert main(["policies", "--oversample", "0.5"]) == 1
        assert "oversample" in capsys.readouterr().err
        assert main([*POLICY_DEMO_ARGS[:-1], "0"]) == 1  # window hours 0
        assert "adaptive_window" in capsys.readouterr().err

    def test_policies_unknown_metric_fails_cleanly(self, capsys):
        """Regression: a misspelled --metrics name used to run an empty
        survey and then blame a missing policy."""
        assert main([*POLICY_DEMO_ARGS, "--metrics", "Link utilization"]) == 1
        err = capsys.readouterr().err
        assert "unknown metrics" in err
        assert "Link utilization" in err

    def test_policies_empty_metrics_fails_cleanly(self, capsys):
        """Regression: a bare --metrics (empty list) slipped past the
        unknown-name validation and ran an empty survey."""
        assert main([*POLICY_DEMO_ARGS, "--metrics"]) == 1
        assert "at least one name" in capsys.readouterr().err


class TestExportFleetCommand:
    def test_export_then_survey_from_dir_matches_synthetic(self, tmp_path, capsys):
        """The measured round trip: survey --from-dir on an exported fleet
        prints exactly the figures of the in-memory survey."""
        assert main(["survey", "--pairs", "28", "--seed", "3"]) == 0
        synthetic_output = capsys.readouterr().out

        fleet_dir = tmp_path / "fleet"
        assert main(["export-fleet", str(fleet_dir), "--pairs", "28", "--seed", "3"]) == 0
        export_output = capsys.readouterr().out
        assert "Exported 28 metric-device pairs" in export_output
        assert (fleet_dir / "manifest.json").exists()
        assert len(list((fleet_dir / "traces").glob("pair-*.npz"))) == 28

        assert main(["survey", "--from-dir", str(fleet_dir), "--workers", "2"]) == 0
        measured_output = capsys.readouterr().out
        assert "Surveying measured fleet" in measured_output
        # Everything below the measured banner equals the synthetic report.
        assert measured_output.split("\n", 2)[2] == synthetic_output

    def test_export_fleet_csv_traces(self, tmp_path, capsys):
        fleet_dir = tmp_path / "fleet"
        assert main(["export-fleet", str(fleet_dir), "--pairs", "14",
                     "--trace-format", "csv"]) == 0
        assert len(list((fleet_dir / "traces").glob("pair-*.csv"))) == 14

    def test_export_fleet_refuses_existing_directory(self, tmp_path, capsys):
        fleet_dir = tmp_path / "fleet"
        assert main(["export-fleet", str(fleet_dir), "--pairs", "14"]) == 0
        capsys.readouterr()
        assert main(["export-fleet", str(fleet_dir), "--pairs", "14"]) == 1
        assert "already holds" in capsys.readouterr().err

    def test_survey_from_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["survey", "--from-dir", str(tmp_path / "nope")]) == 1
        assert "manifest.json" in capsys.readouterr().err

    def test_survey_from_dir_with_corrupt_trace_fails_cleanly(self, tmp_path, capsys):
        """A corrupt trace file surfacing mid-survey (even from a worker
        process) must report 'error: ...' + exit 1, not a traceback."""
        fleet_dir = tmp_path / "fleet"
        assert main(["export-fleet", str(fleet_dir), "--pairs", "14"]) == 0
        capsys.readouterr()
        next((fleet_dir / "traces").glob("pair-*.npz")).write_bytes(b"garbage")
        assert main(["survey", "--from-dir", str(fleet_dir), "--workers", "2"]) == 1
        assert "corrupt or truncated trace file" in capsys.readouterr().err


class TestWindowedCommand:
    def test_windowed_runs(self, capsys):
        exit_code = main(["windowed", "--pairs", "28", "--seed", "3",
                          "--limit-per-metric", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Windowed sweep over 14 metric-device pairs" in output
        assert "dynamic_range" in output

    def test_windowed_defaults_match_figure7(self):
        args = build_parser().parse_args(["windowed"])
        assert args.window_hours == 6.0
        assert args.step_minutes == 5.0


class TestAdaptiveCommand:
    def test_adaptive_runs(self, capsys):
        exit_code = main(["adaptive", "--metric", "Temperature", "--days", "1",
                          "--window-hours", "6", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Adaptive controller collected" in output
        assert "Nyquist round trip" in output


class TestEstimateCommand:
    def test_estimate_from_csv(self, tmp_path, capsys):
        # A 0.01 Hz tone sampled every 5 s for an hour.
        times = np.arange(0, 3600.0, 5.0)
        values = 10.0 + 3.0 * np.sin(2 * np.pi * 0.01 * times)
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,value\n" +
                        "\n".join(f"{t},{v}" for t, v in zip(times, values)))
        exit_code = main(["estimate", str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "nyquist rate" in output
        assert "reduction ratio" in output

    def test_estimate_rejects_tiny_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.csv"
        path.write_text("timestamp,value\n0,1\n")
        assert main(["estimate", str(path)]) == 1

    def test_estimate_missing_column_fails_cleanly(self, tmp_path, capsys):
        """Regression: a row without a value column used to raise IndexError."""
        path = tmp_path / "short_row.csv"
        path.write_text("timestamp,value\n0,1.0\n5\n10,2.0\n")
        assert main(["estimate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "line 3" in err
        assert "two columns" in err

    def test_estimate_non_numeric_value_fails_cleanly(self, tmp_path, capsys):
        """Regression: a non-numeric value used to raise a raw ValueError."""
        path = tmp_path / "bad_value.csv"
        path.write_text("timestamp,value\n0,1.0\n5,oops\n")
        assert main(["estimate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "line 3" in err
        assert "numeric" in err

    def test_estimate_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["estimate", str(tmp_path / "nope.csv")]) == 1
        assert "cannot read" in capsys.readouterr().err
