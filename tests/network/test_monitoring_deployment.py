"""Unit tests for the monitoring deployment over a fabric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.monitoring import DeploymentSpec, MonitoringDeployment
from repro.network.topology import (FatTreeSpec, TopologySpec, WanRingSpec,
                                    build_leaf_spine, servers, switches)


@pytest.fixture(scope="module")
def deployment():
    topology = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=2))
    return MonitoringDeployment(topology, trace_duration=21600.0, seed=3)


class TestDeployment:
    def test_point_count(self, deployment):
        topology = deployment.topology
        expected = (len(switches(topology)) * len(deployment.switch_metrics)
                    + len(servers(topology)) * len(deployment.server_metrics))
        assert len(deployment) == expected

    def test_points_are_cached(self, deployment):
        assert deployment.points() is deployment.points()

    def test_server_points_only_get_server_metrics(self, deployment):
        server_nodes = set(servers(deployment.topology))
        for point in deployment.points():
            if point.node in server_nodes:
                assert point.metric.name in deployment.server_metrics

    def test_points_for_metric(self, deployment):
        points = deployment.points_for_metric("Link util")
        assert points
        assert all(point.metric.name == "Link util" for point in points)
        assert len(points) == len(switches(deployment.topology))

    def test_reference_trace_is_oversampled(self, deployment):
        point = deployment.points_for_metric("Temperature")[0]
        reference = deployment.reference_trace(point, oversample_factor=4.0)
        production = deployment.production_trace(point)
        assert reference.sampling_rate == pytest.approx(production.sampling_rate * 4.0)
        assert len(reference) == pytest.approx(4 * len(production), abs=4)

    def test_reference_trace_rejects_bad_factor(self, deployment):
        point = deployment.points()[0]
        with pytest.raises(ValueError):
            deployment.reference_trace(point, oversample_factor=0.5)

    def test_traces_are_deterministic(self, deployment):
        point = deployment.points()[0]
        a = deployment.production_trace(point)
        b = deployment.production_trace(point)
        np.testing.assert_allclose(a.values, b.values)

    def test_iter_reference_traces_limit(self, deployment):
        pairs = list(deployment.iter_reference_traces("Link util", limit=2))
        assert len(pairs) == 2
        for point, trace in pairs:
            assert point.metric.name == "Link util"
            assert len(trace) > 0


class TestFabricDeployments:
    """DeploymentSpec over the non-leaf-spine fabrics: every cell of the
    scenario matrix must come out hop-priced on its own topology."""

    def test_fat_tree_spec_opens_and_prices_hops(self):
        spec = DeploymentSpec(topology=FatTreeSpec(k=2), trace_duration=3600.0,
                              seed=7, oversample_factor=2.0)
        source = spec.open()
        assert len(source.pairs()) > 0
        accountant = source.accountant()
        devices = {pair.key[1] for pair in source.pairs()}
        assert all(accountant.hops(device) >= 1 for device in devices)

    def test_wan_ring_hop_pricing_is_asymmetric(self):
        """Far-side devices pay more transit hops than collector-site ones."""
        spec = DeploymentSpec(
            topology=WanRingSpec(num_sites=4, routers_per_site=1, servers_per_site=1),
            trace_duration=3600.0, seed=7, oversample_factor=2.0)
        source = spec.open()
        accountant = source.accountant()
        assert [accountant.hops(f"pop-{site}-0") for site in range(4)] == [1, 2, 3, 2]
        near = accountant.price_samples("pop-0-0", 1000)
        far = accountant.price_samples("pop-2-0", 1000)
        assert far.transmission == 3 * near.transmission

    def test_single_device_wan_deployment_serves_pairs(self):
        """One router, no servers: degenerate but fully functional."""
        spec = DeploymentSpec(
            topology=WanRingSpec(num_sites=1, routers_per_site=1, servers_per_site=0),
            trace_duration=3600.0, seed=7, oversample_factor=2.0)
        source = spec.open()
        pairs = source.pairs()
        assert pairs
        assert {pair.key[1] for pair in pairs} == {"pop-0-0"}
        trace = source.load(pairs[0])
        assert len(trace) > 0
        assert source.accountant().hops("pop-0-0") == 1

    def test_wan_ring_spec_survives_worker_round_trip(self):
        import pickle

        spec = DeploymentSpec(
            topology=WanRingSpec(num_sites=2, routers_per_site=1, servers_per_site=1),
            trace_duration=3600.0, seed=7, oversample_factor=2.0)
        source = spec.open()
        clone = pickle.loads(pickle.dumps(source.worker_spec())).open()
        pair, other = source.pairs()[0], clone.pairs()[0]
        assert pair.key == other.key
        np.testing.assert_array_equal(source.load(pair).values,
                                      clone.load(other).values)
