"""Unit tests for the monitoring deployment over a fabric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.monitoring import MonitoringDeployment
from repro.network.topology import TopologySpec, build_leaf_spine, servers, switches


@pytest.fixture(scope="module")
def deployment():
    topology = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=2))
    return MonitoringDeployment(topology, trace_duration=21600.0, seed=3)


class TestDeployment:
    def test_point_count(self, deployment):
        topology = deployment.topology
        expected = (len(switches(topology)) * len(deployment.switch_metrics)
                    + len(servers(topology)) * len(deployment.server_metrics))
        assert len(deployment) == expected

    def test_points_are_cached(self, deployment):
        assert deployment.points() is deployment.points()

    def test_server_points_only_get_server_metrics(self, deployment):
        server_nodes = set(servers(deployment.topology))
        for point in deployment.points():
            if point.node in server_nodes:
                assert point.metric.name in deployment.server_metrics

    def test_points_for_metric(self, deployment):
        points = deployment.points_for_metric("Link util")
        assert points
        assert all(point.metric.name == "Link util" for point in points)
        assert len(points) == len(switches(deployment.topology))

    def test_reference_trace_is_oversampled(self, deployment):
        point = deployment.points_for_metric("Temperature")[0]
        reference = deployment.reference_trace(point, oversample_factor=4.0)
        production = deployment.production_trace(point)
        assert reference.sampling_rate == pytest.approx(production.sampling_rate * 4.0)
        assert len(reference) == pytest.approx(4 * len(production), abs=4)

    def test_reference_trace_rejects_bad_factor(self, deployment):
        point = deployment.points()[0]
        with pytest.raises(ValueError):
            deployment.reference_trace(point, oversample_factor=0.5)

    def test_traces_are_deterministic(self, deployment):
        point = deployment.points()[0]
        a = deployment.production_trace(point)
        b = deployment.production_trace(point)
        np.testing.assert_allclose(a.values, b.values)

    def test_iter_reference_traces_limit(self, deployment):
        pairs = list(deployment.iter_reference_traces("Link util", limit=2))
        assert len(pairs) == 2
        for point, trace in pairs:
            assert point.metric.name == "Link util"
            assert len(trace) > 0
