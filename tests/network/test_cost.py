"""Unit tests for the monitoring cost model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.network.cost import CostBreakdown, CostModel, TelemetryCostAccountant
from repro.network.monitoring import MonitoringDeployment
from repro.network.topology import (NodeRole, TopologySpec, attach_collector,
                                    build_leaf_spine)


class TestCostModel:
    def test_defaults_are_valid(self):
        CostModel()

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            CostModel(bytes_per_sample=-1.0)
        with pytest.raises(ValueError):
            CostModel(analysis_cost_per_sample=-0.5)


class TestCostBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = CostBreakdown(samples=10, collection_cpu_us=1.0, transmission=2.0,
                                  storage_bytes=3.0, analysis=4.0)
        assert breakdown.total == pytest.approx(10.0)

    def test_add_accumulates(self):
        total = CostBreakdown()
        total.add(CostBreakdown(samples=5, storage_bytes=10.0))
        total.add(CostBreakdown(samples=3, storage_bytes=20.0))
        assert total.samples == 8
        assert total.storage_bytes == 30.0

    def test_as_dict_keys(self):
        keys = set(CostBreakdown().as_dict())
        assert {"samples", "collection_cpu_us", "transmission", "storage_bytes",
                "analysis", "total"} == keys

    def test_relative_to(self):
        baseline = CostBreakdown(samples=10, storage_bytes=100.0)
        half = CostBreakdown(samples=5, storage_bytes=50.0)
        relative = half.relative_to(baseline)
        assert relative["samples"] == pytest.approx(0.5)
        assert relative["storage_bytes"] == pytest.approx(0.5)

    def test_relative_to_zero_baseline_is_nan(self):
        relative = CostBreakdown().relative_to(CostBreakdown())
        assert math.isnan(relative["total"])


class TestAccountant:
    def make_accountant(self):
        graph = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=2))
        collector = attach_collector(graph)
        return TelemetryCostAccountant(topology=graph, collector=collector), graph, collector

    def test_hop_counts(self):
        accountant, graph, collector = self.make_accountant()
        assert accountant.hops(collector) == 0
        assert accountant.hops("spine-0") == 1
        assert accountant.hops("leaf-0") == 2
        assert accountant.hops("server-0-0") == 3

    def test_unknown_device_uses_default_hops(self):
        accountant, _, _ = self.make_accountant()
        assert accountant.hops("not-a-node") == 3

    def test_price_scales_linearly_with_samples(self):
        accountant, _, _ = self.make_accountant()
        one = accountant.price_samples("leaf-0", 100)
        two = accountant.price_samples("leaf-0", 200)
        assert two.total == pytest.approx(2 * one.total)

    def test_price_components(self):
        model = CostModel(bytes_per_sample=10.0, collection_cpu_us=1.0,
                          transmission_cost_per_byte_hop=1.0, storage_cost_per_byte=1.0,
                          analysis_cost_per_sample=1.0)
        accountant = TelemetryCostAccountant(cost_model=model, default_hops=2)
        cost = accountant.price_samples("dev", 5)
        assert cost.collection_cpu_us == pytest.approx(5.0)
        assert cost.storage_bytes == pytest.approx(50.0)
        assert cost.transmission == pytest.approx(100.0)
        assert cost.analysis == pytest.approx(5.0)

    def test_negative_samples_rejected(self):
        accountant, _, _ = self.make_accountant()
        with pytest.raises(ValueError):
            accountant.price_samples("leaf-0", -1)

    def test_collector_must_exist(self):
        graph = build_leaf_spine()
        with pytest.raises(ValueError):
            TelemetryCostAccountant(topology=graph, collector="missing")

    def test_farther_devices_cost_more_to_ship(self):
        accountant, _, _ = self.make_accountant()
        near = accountant.price_samples("spine-0", 100)
        far = accountant.price_samples("server-0-0", 100)
        assert far.transmission > near.transmission
        assert far.storage_bytes == near.storage_bytes


class TestVectorisedPricing:
    def make_accountant(self):
        graph = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=2))
        collector = attach_collector(graph)
        return TelemetryCostAccountant(topology=graph, collector=collector)

    def test_block_matches_per_device_pricing(self):
        accountant = self.make_accountant()
        devices = ["spine-0", "leaf-1", "server-0-0", "not-a-node"]
        counts = np.array([10, 20, 30, 40])
        priced = accountant.price_sample_block(devices, counts)
        for index, (device, count) in enumerate(zip(devices, counts)):
            scalar = accountant.price_samples(device, int(count))
            assert priced["hops"][index] == accountant.hops(device)
            assert priced["collection_cpu_us"][index] == pytest.approx(scalar.collection_cpu_us)
            assert priced["transmission"][index] == pytest.approx(scalar.transmission)
            assert priced["storage_bytes"][index] == pytest.approx(scalar.storage_bytes)
            assert priced["analysis"][index] == pytest.approx(scalar.analysis)

    def test_rejects_bad_shapes_and_negatives(self):
        accountant = self.make_accountant()
        with pytest.raises(ValueError):
            accountant.price_sample_block(["a", "b"], np.array([1]))
        with pytest.raises(ValueError):
            accountant.price_sample_block(["a"], np.array([-1]))


class TestDeploymentPricing:
    """Satellite coverage: hop-weighted pricing through a real
    MonitoringDeployment topology (previously only exercised indirectly)."""

    def make_deployment(self):
        graph = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2,
                                              servers_per_leaf=2))
        collector = attach_collector(graph)
        deployment = MonitoringDeployment(graph, trace_duration=7200.0, seed=3)
        return deployment, TelemetryCostAccountant(topology=graph, collector=collector), graph

    def test_every_point_is_priced_with_its_fabric_distance(self):
        deployment, accountant, graph = self.make_deployment()
        for point in deployment.points():
            role = graph.nodes[point.node]["role"]
            expected_hops = {NodeRole.SPINE: 1, NodeRole.LEAF: 2,
                             NodeRole.SERVER: 3}[role]
            assert accountant.hops(point.node) == expected_hops
            cost = accountant.price_samples(point.node, 100)
            model = accountant.cost_model
            assert cost.transmission == pytest.approx(
                100 * model.bytes_per_sample * expected_hops
                * model.transmission_cost_per_byte_hop)

    def test_server_points_cost_more_than_spine_points(self):
        deployment, accountant, graph = self.make_deployment()
        by_role: dict[str, float] = {}
        for point in deployment.points():
            role = graph.nodes[point.node]["role"]
            by_role.setdefault(role, accountant.price_samples(point.node, 1000).total)
        assert by_role[NodeRole.SERVER] > by_role[NodeRole.LEAF] > by_role[NodeRole.SPINE]

    def test_deployment_point_block_pricing(self):
        """Vectorised pricing over a deployment's measurement points equals
        per-point scalar pricing, hop counts included."""
        deployment, accountant, _ = self.make_deployment()
        points = deployment.points_for_metric("Temperature")
        devices = [point.node for point in points]
        counts = np.arange(1, len(points) + 1) * 7
        priced = accountant.price_sample_block(devices, counts)
        totals = (priced["collection_cpu_us"] + priced["transmission"]
                  + priced["storage_bytes"] + priced["analysis"])
        for index, point in enumerate(points):
            scalar = accountant.price_samples(point.node, int(counts[index]))
            assert totals[index] == pytest.approx(scalar.total)
