"""Unit tests for the monitoring cost model."""

from __future__ import annotations

import math

import pytest

from repro.network.cost import CostBreakdown, CostModel, TelemetryCostAccountant
from repro.network.topology import TopologySpec, attach_collector, build_leaf_spine


class TestCostModel:
    def test_defaults_are_valid(self):
        CostModel()

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            CostModel(bytes_per_sample=-1.0)
        with pytest.raises(ValueError):
            CostModel(analysis_cost_per_sample=-0.5)


class TestCostBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = CostBreakdown(samples=10, collection_cpu_us=1.0, transmission=2.0,
                                  storage_bytes=3.0, analysis=4.0)
        assert breakdown.total == pytest.approx(10.0)

    def test_add_accumulates(self):
        total = CostBreakdown()
        total.add(CostBreakdown(samples=5, storage_bytes=10.0))
        total.add(CostBreakdown(samples=3, storage_bytes=20.0))
        assert total.samples == 8
        assert total.storage_bytes == 30.0

    def test_as_dict_keys(self):
        keys = set(CostBreakdown().as_dict())
        assert {"samples", "collection_cpu_us", "transmission", "storage_bytes",
                "analysis", "total"} == keys

    def test_relative_to(self):
        baseline = CostBreakdown(samples=10, storage_bytes=100.0)
        half = CostBreakdown(samples=5, storage_bytes=50.0)
        relative = half.relative_to(baseline)
        assert relative["samples"] == pytest.approx(0.5)
        assert relative["storage_bytes"] == pytest.approx(0.5)

    def test_relative_to_zero_baseline_is_nan(self):
        relative = CostBreakdown().relative_to(CostBreakdown())
        assert math.isnan(relative["total"])


class TestAccountant:
    def make_accountant(self):
        graph = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=2))
        collector = attach_collector(graph)
        return TelemetryCostAccountant(topology=graph, collector=collector), graph, collector

    def test_hop_counts(self):
        accountant, graph, collector = self.make_accountant()
        assert accountant.hops(collector) == 0
        assert accountant.hops("spine-0") == 1
        assert accountant.hops("leaf-0") == 2
        assert accountant.hops("server-0-0") == 3

    def test_unknown_device_uses_default_hops(self):
        accountant, _, _ = self.make_accountant()
        assert accountant.hops("not-a-node") == 3

    def test_price_scales_linearly_with_samples(self):
        accountant, _, _ = self.make_accountant()
        one = accountant.price_samples("leaf-0", 100)
        two = accountant.price_samples("leaf-0", 200)
        assert two.total == pytest.approx(2 * one.total)

    def test_price_components(self):
        model = CostModel(bytes_per_sample=10.0, collection_cpu_us=1.0,
                          transmission_cost_per_byte_hop=1.0, storage_cost_per_byte=1.0,
                          analysis_cost_per_sample=1.0)
        accountant = TelemetryCostAccountant(cost_model=model, default_hops=2)
        cost = accountant.price_samples("dev", 5)
        assert cost.collection_cpu_us == pytest.approx(5.0)
        assert cost.storage_bytes == pytest.approx(50.0)
        assert cost.transmission == pytest.approx(100.0)
        assert cost.analysis == pytest.approx(5.0)

    def test_negative_samples_rejected(self):
        accountant, _, _ = self.make_accountant()
        with pytest.raises(ValueError):
            accountant.price_samples("leaf-0", -1)

    def test_collector_must_exist(self):
        graph = build_leaf_spine()
        with pytest.raises(ValueError):
            TelemetryCostAccountant(topology=graph, collector="missing")

    def test_farther_devices_cost_more_to_ship(self):
        accountant, _, _ = self.make_accountant()
        near = accountant.price_samples("spine-0", 100)
        far = accountant.price_samples("server-0-0", 100)
        assert far.transmission > near.transmission
        assert far.storage_bytes == near.storage_bytes
