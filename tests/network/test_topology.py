"""Unit tests for the datacenter topology builders."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.network.topology import (FatTreeSpec, NodeRole, TopologySpec, WanRingSpec,
                                    attach_collector, build_fat_tree, build_leaf_spine,
                                    build_wan_ring, servers, switches)


class TestLeafSpine:
    def test_node_counts(self):
        graph = build_leaf_spine(TopologySpec(num_spines=4, num_leaves=8, servers_per_leaf=16))
        assert len(switches(graph)) == 12
        assert len(servers(graph)) == 8 * 16

    def test_full_bipartite_fabric(self):
        spec = TopologySpec(num_spines=3, num_leaves=5, servers_per_leaf=0)
        graph = build_leaf_spine(spec)
        for leaf in (n for n, d in graph.nodes(data=True) if d["role"] == NodeRole.LEAF):
            spine_neighbors = [n for n in graph.neighbors(leaf)
                               if graph.nodes[n]["role"] == NodeRole.SPINE]
            assert len(spine_neighbors) == 3

    def test_connected(self):
        graph = build_leaf_spine()
        assert nx.is_connected(graph)

    def test_edges_have_capacity(self):
        graph = build_leaf_spine()
        for _, _, data in graph.edges(data=True):
            assert data["capacity_gbps"] > 0

    def test_servers_attach_to_one_leaf(self):
        graph = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=3))
        for server in servers(graph):
            assert graph.degree(server) == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(num_spines=0)
        with pytest.raises(ValueError):
            TopologySpec(leaf_uplink_gbps=-1.0)


class TestFatTree:
    def test_k4_counts(self):
        graph = build_fat_tree(4)
        roles = nx.get_node_attributes(graph, "role")
        assert sum(1 for role in roles.values() if role == NodeRole.CORE) == 4
        assert sum(1 for role in roles.values() if role == NodeRole.AGGREGATION) == 8
        assert sum(1 for role in roles.values() if role == NodeRole.EDGE) == 8
        assert sum(1 for role in roles.values() if role == NodeRole.SERVER) == 16

    def test_k4_is_connected(self):
        assert nx.is_connected(build_fat_tree(4))

    def test_server_count_scales_with_k(self):
        assert len(servers(build_fat_tree(6))) == 6 ** 3 // 4

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            build_fat_tree(3)

    def test_core_connectivity(self):
        graph = build_fat_tree(4)
        # Each aggregation switch connects to k/2 cores.
        aggs = [n for n, d in graph.nodes(data=True) if d["role"] == NodeRole.AGGREGATION]
        for agg in aggs:
            cores = [n for n in graph.neighbors(agg) if graph.nodes[n]["role"] == NodeRole.CORE]
            assert len(cores) == 2


class TestCollector:
    def test_attach_to_spines_by_default(self):
        graph = build_leaf_spine(TopologySpec(num_spines=3, num_leaves=4, servers_per_leaf=1))
        collector = attach_collector(graph)
        assert graph.nodes[collector]["role"] == NodeRole.COLLECTOR
        assert graph.degree(collector) == 3

    def test_attach_explicit_points(self):
        graph = build_leaf_spine()
        collector = attach_collector(graph, attachment_points=["leaf-0"])
        assert list(graph.neighbors(collector)) == ["leaf-0"]

    def test_attach_duplicate_name_rejected(self):
        graph = build_leaf_spine()
        attach_collector(graph, name="c0")
        with pytest.raises(ValueError):
            attach_collector(graph, name="c0")

    def test_attach_unknown_point_rejected(self):
        graph = build_leaf_spine()
        with pytest.raises(ValueError):
            attach_collector(graph, attachment_points=["nope"])

    def test_collector_reaches_every_device(self):
        graph = build_leaf_spine()
        collector = attach_collector(graph)
        lengths = nx.single_source_shortest_path_length(graph, collector)
        assert set(lengths) == set(graph.nodes)


class TestFatTreeSpec:
    def test_build_matches_builder(self):
        spec = FatTreeSpec(k=4, server_link_gbps=10.0, fabric_link_gbps=40.0)
        graph = spec.build()
        reference = build_fat_tree(4, server_link_gbps=10.0, fabric_link_gbps=40.0)
        assert set(graph.nodes) == set(reference.nodes)
        assert set(graph.edges) == set(reference.edges)

    def test_smallest_legal_arity(self):
        graph = FatTreeSpec(k=2).build()
        assert nx.is_connected(graph)
        assert len(servers(graph)) == 2  # k pods x k/2 edges x k/2 servers

    @pytest.mark.parametrize("kwargs", [
        {"k": 0}, {"k": 3}, {"k": -4},
        {"server_link_gbps": 0.0}, {"fabric_link_gbps": -1.0},
    ])
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            FatTreeSpec(**kwargs)


class TestWanRing:
    def test_sites_form_a_ring_of_gateways(self):
        spec = WanRingSpec(num_sites=4, routers_per_site=2, servers_per_site=1)
        graph = build_wan_ring(spec)
        gateways = [f"pop-{site}-0" for site in range(4)]
        for site, gateway in enumerate(gateways):
            assert graph.has_edge(gateway, gateways[(site + 1) % 4])
        assert nx.is_connected(graph)

    def test_single_site_ring_is_degenerate_but_valid(self):
        """A one-site 'ring' must not self-loop: one PoP, zero transit hops."""
        spec = WanRingSpec(num_sites=1, routers_per_site=1, servers_per_site=2)
        graph = build_wan_ring(spec)
        assert not any(u == v for u, v in graph.edges)
        assert nx.is_connected(graph)
        assert len(servers(graph)) == 2
        assert spec.gateway() == "pop-0-0"

    def test_single_device_deployment(self):
        """The smallest fabric of all: one router, nothing else."""
        graph = build_wan_ring(WanRingSpec(num_sites=1, routers_per_site=1,
                                           servers_per_site=0))
        assert list(graph.nodes) == ["pop-0-0"]
        assert len(graph.edges) == 0

    def test_hop_counts_are_asymmetric_from_the_collector_site(self):
        """The point of the WAN column: distance to the collector depends on
        ring position, unlike the leaf-spine fabrics."""
        spec = WanRingSpec(num_sites=4, routers_per_site=1, servers_per_site=1)
        graph = build_wan_ring(spec)
        collector = attach_collector(graph, [spec.gateway()])
        lengths = nx.single_source_shortest_path_length(graph, collector)
        pop_hops = [lengths[f"pop-{site}-0"] for site in range(4)]
        server_hops = [lengths[f"server-{site}-0"] for site in range(4)]
        assert pop_hops == [1, 2, 3, 2]
        assert server_hops == [2, 3, 4, 3]
        assert len(set(pop_hops)) > 1

    def test_servers_round_robin_across_site_routers(self):
        graph = build_wan_ring(WanRingSpec(num_sites=1, routers_per_site=2,
                                           servers_per_site=4))
        for index in range(4):
            assert graph.has_edge(f"server-0-{index}", f"pop-0-{index % 2}")

    @pytest.mark.parametrize("kwargs", [
        {"num_sites": 0}, {"routers_per_site": 0}, {"servers_per_site": -1},
        {"collector_site": 6}, {"collector_site": -1}, {"ring_link_gbps": 0.0},
    ])
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            WanRingSpec(**kwargs)
