"""Self-tests of ``repro-lint``: every rule fires, passes and suppresses.

Three layers:

* **Fixture matrix** -- for each syntactic rule (RL001-RL004, RL006,
  RL007) a
  minimal snippet that violates it, a minimal snippet that satisfies it,
  and the violating snippet with a ``# repro-lint: disable=RLxxx``
  comment on the offending line.  Snippets are linted under *virtual*
  repo-relative paths so the zone scoping (library vs CLI vs IO module
  vs record module) is exercised exactly as on disk.
* **RL005 introspection** -- deliberately broken block classes handed to
  :func:`~repro.devtools.lint.check_block_schemas` directly.
* **End to end** -- the analyser over this repository's own ``src/``,
  ``tests/``, ``benchmarks/`` and ``examples/`` trees reports *zero*
  violations, and the ``main()`` entry point exits 0/1/2 as documented.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.devtools.lint import (DEFAULT_ROOTS, RULES, Violation,
                                 check_block_schemas, find_repo_root,
                                 lint_paths, lint_sources, main,
                                 rule_catalogue)
from repro.analysis.survey import RecordBlock

REPO_ROOT = Path(__file__).resolve().parents[2]

LIBRARY = "src/repro/core/fixture.py"
IO_MODULE = "src/repro/records/sinks.py"
RECORD_MODULE = "src/repro/analysis/survey.py"
QUARANTINE_MODULE = "src/repro/analysis/policy_survey.py"
STORE_MODULE = "src/repro/records/store.py"
TEST_ZONE = "tests/core/test_fixture.py"


def rule_ids(violations: list[Violation]) -> list[str]:
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# Fixture matrix: one (rule, path, bad, good) case per behaviour
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Case:
    label: str
    rule: str
    path: str
    bad: str
    good: str


CASES = [
    Case("legacy-global-rng", "RL001", LIBRARY,
         bad="import numpy as np\nx = np.random.normal(size=3)\n",
         good="import numpy as np\nrng = np.random.default_rng(7)\n"
              "x = rng.normal(size=3)\n"),
    Case("argless-default-rng", "RL001", TEST_ZONE,
         bad="import numpy as np\nrng = np.random.default_rng()\n",
         good="import numpy as np\nrng = np.random.default_rng(0)\n"),
    Case("none-seed-is-unseeded", "RL001", LIBRARY,
         bad="from numpy.random import default_rng\nrng = default_rng(None)\n",
         good="from numpy.random import default_rng\nrng = default_rng(42)\n"),
    Case("stdlib-module-rng", "RL001", TEST_ZONE,
         bad="import random\nx = random.random()\n",
         good="import random\nr = random.Random(13)\nx = r.random()\n"),
    Case("argless-random-instance", "RL001", TEST_ZONE,
         bad="import random\nr = random.Random()\n",
         good="import random\nr = random.Random(13)\n"),
    Case("wallclock-time", "RL002", LIBRARY,
         bad="import time\n\ndef f() -> float:\n    return time.time()\n",
         good="def f(now: float) -> float:\n    return now\n"),
    Case("wallclock-datetime-alias", "RL002", LIBRARY,
         bad="from datetime import datetime\nstamp = datetime.now()\n",
         good="from datetime import datetime\n"
              "stamp = datetime.fromtimestamp(0.0)\n"),
    Case("bare-except", "RL003", TEST_ZONE,
         bad="try:\n    x = 1\nexcept:\n    x = 2\n",
         good="try:\n    x = 1\nexcept ValueError:\n    x = 2\n"),
    Case("swallowed-exception", "RL003", LIBRARY,
         bad="try:\n    x = 1\nexcept Exception:\n    pass\n",
         good="try:\n    x = 1\nexcept Exception as error:\n"
              "    raise RuntimeError('wrapped') from error\n"),
    Case("content-error-names-no-path", "RL003", IO_MODULE,
         bad="def f(path):\n"
             "    raise ValueError('corrupt record file: bad magic')\n",
         good="def f(path):\n"
              "    raise ValueError(f'corrupt record file {path}: bad magic')\n"),
    Case("lambda-in-worker-spec", "RL004", "src/repro/telemetry/fixture.py",
         bad="class Spec:\n"
             "    def __init__(self):\n"
             "        self.loader = lambda: 1\n"
             "\n"
             "class Source:\n"
             "    def worker_spec(self) -> Spec:\n"
             "        return Spec()\n",
         good="class Spec:\n"
              "    def __init__(self, path):\n"
              "        self.path = path\n"
              "\n"
              "class Source:\n"
              "    def worker_spec(self) -> Spec:\n"
              "        return Spec('x')\n"),
    Case("open-handle-in-worker-spec", "RL004", "src/repro/telemetry/fixture.py",
         bad="class Spec:\n"
             "    def __init__(self, path):\n"
             "        self.handle = open(path)\n"
             "\n"
             "def worker_spec() -> Spec:\n"
             "    return Spec('x')\n",
         good="class Spec:\n"
              "    def __init__(self, path):\n"
              "        self.path = path\n"
              "\n"
              "def worker_spec() -> Spec:\n"
              "    return Spec('x')\n"),
    Case("closure-in-worker-spec", "RL004", "src/repro/telemetry/fixture.py",
         bad="class Spec:\n"
             "    def __init__(self):\n"
             "        def loader():\n"
             "            return 1\n"
             "        self.loader = loader\n"
             "\n"
             "def worker_spec() -> Spec:\n"
             "    return Spec()\n",
         good="def loader():\n"
              "    return 1\n"
              "\n"
              "class Spec:\n"
              "    def __init__(self):\n"
              "        self.loader = loader\n"
              "\n"
              "def worker_spec() -> Spec:\n"
              "    return Spec()\n"),
    Case("frozen-spec-setattr-lambda", "RL004", "src/repro/telemetry/fixture.py",
         bad="class Spec:\n"
             "    def __init__(self):\n"
             "        object.__setattr__(self, 'fn', lambda: 1)\n"
             "\n"
             "def worker_spec() -> Spec:\n"
             "    return Spec()\n",
         good="class Spec:\n"
              "    def __init__(self):\n"
              "        object.__setattr__(self, 'fn', None)\n"
              "\n"
              "def worker_spec() -> Spec:\n"
              "    return Spec()\n"),
    Case("accumulator-insertion-order", "RL006", RECORD_MODULE,
         bad="def f(items):\n"
             "    acc = {}\n"
             "    for key, value in items:\n"
             "        acc[key] = value\n"
             "    return [acc[key] for key in acc]\n",
         good="def f(items):\n"
              "    acc = {}\n"
              "    for key, value in items:\n"
              "        acc[key] = value\n"
              "    return [acc[key] for key in sorted(acc)]\n"),
    Case("accumulator-items-view", "RL006", RECORD_MODULE,
         bad="def f(items):\n"
             "    acc = dict()\n"
             "    for key, value in items:\n"
             "        acc[key] = value\n"
             "    out = []\n"
             "    for key, value in acc.items():\n"
             "        out.append((key, value))\n"
             "    return out\n",
         good="def f(items):\n"
              "    acc = dict()\n"
              "    for key, value in items:\n"
              "        acc[key] = value\n"
              "    out = []\n"
              "    for key, value in sorted(acc.items()):\n"
              "        out.append((key, value))\n"
              "    return out\n"),
    Case("set-iteration", "RL006", RECORD_MODULE,
         bad="def f(values):\n"
             "    return [value for value in set(values)]\n",
         good="def f(values):\n"
              "    return [value for value in sorted(set(values))]\n"),
    Case("quarantine-silent-continue", "RL007", QUARANTINE_MODULE,
         bad="def f(pairs):\n"
             "    out = []\n"
             "    for pair in pairs:\n"
             "        try:\n"
             "            out.append(load(pair))\n"
             "        except ValueError:\n"
             "            continue\n"
             "    return out\n",
         good="def f(pairs, failures):\n"
              "    out = []\n"
              "    for pair in pairs:\n"
              "        try:\n"
              "            out.append(load(pair))\n"
              "        except ValueError as error:\n"
              "            failures.append(record_failure(pair, error))\n"
              "    return out\n"),
    Case("quarantine-dropped-retry", "RL007", QUARANTINE_MODULE,
         bad="def f(task):\n"
             "    try:\n"
             "        return task()\n"
             "    except OSError:\n"
             "        return None\n",
         good="def f(task, retry, sleep):\n"
              "    try:\n"
              "        return task()\n"
              "    except OSError:\n"
              "        sleep(retry.delay(1))\n"
              "        return task()\n"),
    Case("store-key-from-id", "RL008", STORE_MODULE,
         bad="def key(block):\n"
             "    return str(id(block))\n",
         good="import hashlib\n"
              "def key(payload):\n"
              "    return hashlib.sha256(payload).hexdigest()\n"),
    Case("store-key-from-wallclock", "RL008", STORE_MODULE,
         bad="import time\n"
             "def entry_name(digest):\n"
             "    return f'{digest}-{time.time()}'\n",
         good="def entry_name(digest):\n"
              "    return digest\n"),
    Case("store-key-from-uuid", "RL008", STORE_MODULE,
         bad="import uuid\n"
             "def entry_name():\n"
             "    return uuid.uuid4().hex\n",
         good="def entry_name(digest):\n"
              "    return digest\n"),
    Case("store-unsorted-listing", "RL008", STORE_MODULE,
         bad="def blocks(entry):\n"
             "    return [path for path in entry.glob('block-*.rcb')]\n",
         good="def blocks(entry):\n"
              "    return sorted(entry.glob('block-*.rcb'))\n"),
    Case("store-unsorted-scandir", "RL008", STORE_MODULE,
         bad="import os\n"
             "def entries(root):\n"
             "    return list(os.listdir(root))\n",
         good="import os\n"
              "def entries(root):\n"
              "    return sorted(os.listdir(root))\n"),
]


def test_rl008_is_scoped_to_store_modules() -> None:
    # The same unsorted listing is fine outside the store/cache modules
    # (RL006 covers record modules with its own iteration rules).
    bad = case_by_label("store-unsorted-listing").bad
    assert "RL008" not in rule_ids(lint_sources({LIBRARY: bad}))
    assert "RL008" not in rule_ids(lint_sources({TEST_ZONE: bad}))


def case_by_label(label: str) -> Case:
    return next(case for case in CASES if case.label == label)


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.label)
def test_rule_fires_on_violation(case: Case) -> None:
    violations = lint_sources({case.path: case.bad})
    assert case.rule in rule_ids(violations), \
        f"{case.label}: expected {case.rule} on\n{case.bad}"


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.label)
def test_rule_passes_on_clean_code(case: Case) -> None:
    violations = lint_sources({case.path: case.good})
    assert case.rule not in rule_ids(violations), \
        f"{case.label}: unexpected {case.rule} on\n{case.good}\n" \
        + "\n".join(v.render() for v in violations)


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.label)
def test_line_suppression_silences_the_rule(case: Case) -> None:
    fired = lint_sources({case.path: case.bad})
    lines = case.bad.splitlines()
    for violation in fired:
        if violation.rule == case.rule:
            index = violation.line - 1
            lines[index] += f"  # repro-lint: disable={case.rule}"
    suppressed = lint_sources({case.path: "\n".join(lines) + "\n"})
    assert case.rule not in rule_ids(suppressed)


def test_bare_disable_suppresses_all_rules() -> None:
    source = ("import numpy as np\n"
              "x = np.random.normal(size=3)  # repro-lint: disable\n")
    assert lint_sources({LIBRARY: source}) == []


def test_suppression_is_per_rule() -> None:
    # Disabling RL002 must not hide the RL001 violation on the same line.
    source = ("import numpy as np\n"
              "x = np.random.normal(size=3)  # repro-lint: disable=RL002\n")
    assert rule_ids(lint_sources({LIBRARY: source})) == ["RL001"]


# ----------------------------------------------------------------------
# Zone scoping: the same snippet means different things in different trees
# ----------------------------------------------------------------------
WALLCLOCK = "import time\nstamp = time.time()\n"


@pytest.mark.parametrize("path", ["src/repro/cli.py", "benchmarks/bench_x.py",
                                  "examples/demo.py", TEST_ZONE,
                                  "src/repro/devtools/lint.py"])
def test_wallclock_allowed_outside_library(path: str) -> None:
    assert lint_sources({path: WALLCLOCK}) == []


def test_wallclock_rejected_in_library() -> None:
    assert rule_ids(lint_sources({LIBRARY: WALLCLOCK})) == ["RL002"]


def test_content_error_rule_scopes_to_io_modules() -> None:
    raise_stmt = "raise ValueError('corrupt record file: bad magic')\n"
    assert rule_ids(lint_sources({IO_MODULE: raise_stmt})) == ["RL003"]
    assert lint_sources({LIBRARY: raise_stmt}) == []


def test_iteration_rule_scopes_to_record_modules() -> None:
    snippet = case_by_label("set-iteration").bad
    assert lint_sources({LIBRARY: snippet}) == []
    assert lint_sources({TEST_ZONE: snippet}) == []


def test_quarantine_rule_scopes_to_quarantine_modules() -> None:
    snippet = case_by_label("quarantine-silent-continue").bad
    assert lint_sources({LIBRARY: snippet}) == []
    assert lint_sources({IO_MODULE: snippet}) == []
    assert lint_sources({TEST_ZONE: snippet}) == []


def test_quarantine_rule_accepts_bare_raise() -> None:
    source = ("def f(task):\n"
              "    try:\n"
              "        return task()\n"
              "    except OSError:\n"
              "        raise\n")
    assert lint_sources({QUARANTINE_MODULE: source}) == []


def test_iteration_rule_respects_function_scopes() -> None:
    # The accumulator lives in the outer scope; the inner function iterates
    # its *own* parameter, which the analyser must not conflate with it.
    source = ("def outer(items):\n"
              "    acc = {}\n"
              "    def inner(rows):\n"
              "        return [row for row in rows]\n"
              "    return inner(sorted(acc))\n")
    assert lint_sources({RECORD_MODULE: source}) == []


def test_seeded_constructors_pass_everywhere() -> None:
    source = ("import numpy as np\n"
              "rng = np.random.Generator(np.random.PCG64(11))\n"
              "seq = np.random.SeedSequence(5)\n")
    assert lint_sources({LIBRARY: source}) == []


def test_worker_spec_names_resolve_across_files() -> None:
    # worker_spec() lives in one module, the (broken) spec class in another.
    spec = "class RemoteSpec:\n    fn = lambda: 1\n"
    source = ("from .fixture import RemoteSpec\n"
              "def worker_spec() -> RemoteSpec:\n"
              "    return RemoteSpec()\n")
    violations = lint_sources({
        "src/repro/telemetry/fixture.py": spec,
        "src/repro/telemetry/source2.py": source,
    })
    assert rule_ids(violations) == ["RL004"]


# ----------------------------------------------------------------------
# RL005: introspective schema completeness
# ----------------------------------------------------------------------
def test_rl005_passes_on_real_block_types() -> None:
    assert check_block_schemas() == []


def test_rl005_missing_schema() -> None:
    class NoSchema:
        pass

    violations = check_block_schemas(block_classes=[NoSchema])
    assert rule_ids(violations) == ["RL005"]
    assert "no _SCHEMA" in violations[0].message


def test_rl005_not_a_dataclass() -> None:
    class NotADataclass:
        _SCHEMA = RecordBlock._SCHEMA

    violations = check_block_schemas(block_classes=[NotADataclass])
    assert rule_ids(violations) == ["RL005"]
    assert "not a dataclass" in violations[0].message


def test_rl005_field_schema_drift() -> None:
    @dataclasses.dataclass
    class Drifted:
        _SCHEMA = RecordBlock._SCHEMA
        metric_name: str  # the real schema has many more members

    violations = check_block_schemas(block_classes=[Drifted])
    assert rule_ids(violations) == ["RL005"]
    assert "do not match" in violations[0].message


def test_rl005_registered_real_class_is_clean() -> None:
    assert check_block_schemas(block_classes=[RecordBlock]) == []


# ----------------------------------------------------------------------
# Catalogue, rendering, entry point, end to end
# ----------------------------------------------------------------------
def test_rule_catalogue_lists_all_eight_rules() -> None:
    triples = rule_catalogue()
    assert [rule_id for rule_id, _, _ in triples] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007", "RL008"]
    assert {rule.id for rule in RULES} == set(
        rule_id for rule_id, _, _ in triples) - {"RL005"}
    for _, name, rationale in triples:
        assert name and rationale


def test_violation_render_format() -> None:
    violation = Violation(rule="RL001", path="src/repro/x.py", line=3, col=4,
                          message="boom")
    assert violation.render() == "src/repro/x.py:3:4: RL001 boom"


def test_find_repo_root_walks_up_to_pyproject() -> None:
    assert find_repo_root(REPO_ROOT / "src" / "repro") == REPO_ROOT
    with pytest.raises(ValueError, match="pyproject.toml"):
        find_repo_root(Path("/nonexistent/deeply/nested"))


def test_main_list_rules(capsys: pytest.CaptureFixture[str]) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005",
                    "RL006", "RL007"):
        assert rule_id in out


def test_main_reports_violations_with_exit_1(
        tmp_path: Path, capsys: pytest.CaptureFixture[str]) -> None:
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\nx = np.random.normal(size=3)\n")
    code = main(["--root", str(tmp_path), "--no-import-checks",
                 str(tmp_path / "src")])
    captured = capsys.readouterr()
    assert code == 1
    assert "src/repro/core/bad.py:2:4: RL001" in captured.out
    assert "1 violation(s)" in captured.err


def test_main_select_narrows_rules(tmp_path: Path,
                                   capsys: pytest.CaptureFixture[str]) -> None:
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nimport numpy as np\n"
                   "x = np.random.normal(size=3)\nstamp = time.time()\n")
    code = main(["--root", str(tmp_path), "--no-import-checks",
                 "--select", "RL002", str(tmp_path / "src")])
    captured = capsys.readouterr()
    assert code == 1
    assert "RL002" in captured.out and "RL001" not in captured.out


def test_main_rejects_non_python_path(tmp_path: Path,
                                      capsys: pytest.CaptureFixture[str]) -> None:
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    (tmp_path / "notes.txt").write_text("hello\n")
    code = main(["--root", str(tmp_path), str(tmp_path / "notes.txt")])
    assert code == 2
    assert "not a python file" in capsys.readouterr().err


def test_repository_is_clean_end_to_end(
        capsys: pytest.CaptureFixture[str]) -> None:
    paths = [str(REPO_ROOT / part) for part in DEFAULT_ROOTS
             if (REPO_ROOT / part).is_dir()]
    assert main(["--root", str(REPO_ROOT), *paths]) == 0, \
        capsys.readouterr().out


def test_lint_paths_on_single_file() -> None:
    target = REPO_ROOT / "src" / "repro" / "devtools" / "lint.py"
    assert lint_paths([target], root=REPO_ROOT, import_checks=False) == []
