"""Unit tests for the fleet survey (Figures 1, 4, 5 and the headline stats)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.analysis.survey import (PairCategory, RecordBlock,
                                   SpillingRecordSink, SurveyResult, run_survey,
                                   run_windowed_survey)
from repro.core.nyquist import DEFAULT_ALIASED_BAND_FRACTION, NyquistEstimator
from repro.faults import BatchExecutionError, FaultInjectingTraceSource, FaultPlan
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.measured import MeasuredFleetDataset


def assert_blocks_byte_identical(left, right) -> None:
    """Column-for-column exact equality of two block streams."""
    left_blocks, right_blocks = list(left), list(right)
    assert len(left_blocks) == len(right_blocks)
    for a, b in zip(left_blocks, right_blocks):
        assert a.metric_name == b.metric_name
        assert np.array_equal(a.device_ids, b.device_ids)
        for column in ("current_rate", "nyquist_rate", "reduction_ratio",
                       "true_nyquist_rate", "trace_duration"):
            assert np.array_equal(getattr(a, column), getattr(b, column),
                                  equal_nan=True), column
        assert np.array_equal(a.category, b.category)
        assert np.array_equal(a.reliable, b.reliable)


@pytest.fixture(scope="module")
def survey():
    dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
    return run_survey(dataset)


class TestRunSurvey:
    def test_one_record_per_pair(self, survey):
        assert len(survey) == 84

    def test_records_carry_metric_and_device(self, survey):
        record = survey.records[0]
        assert record.metric_name
        assert record.device_id
        assert record.current_rate > 0

    def test_limit_per_metric(self):
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        limited = run_survey(dataset, limit_per_metric=2)
        assert len(limited) == 2 * 14

    def test_metric_subset(self):
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        result = run_survey(dataset, metrics=["Temperature", "Link util"])
        assert set(result.metrics()) == {"Temperature", "Link util"}

    def test_rejects_bad_threshold(self):
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        with pytest.raises(ValueError):
            run_survey(dataset, oversample_threshold=0.5)


class TestAggregations:
    def test_most_pairs_oversampled(self, survey):
        headline = survey.headline()
        assert headline["oversampled_fraction"] > 0.7
        # The three categories partition the survey.
        assert headline["oversampled_fraction"] + headline["marginal_fraction"] + \
            headline["aliased_suspect_fraction"] == pytest.approx(1.0)

    def test_headline_separates_marginal_from_aliased(self, survey):
        """Regression: marginal (reliable) pairs used to be folded into the
        suspect fraction, overstating the paper's ~11 % needs-inspection claim."""
        headline = survey.headline()
        marginal = sum(r.category is PairCategory.MARGINAL for r in survey.records)
        suspect = sum(r.category is PairCategory.ALIASED_SUSPECT for r in survey.records)
        assert headline["marginal_fraction"] == pytest.approx(marginal / len(survey))
        assert headline["aliased_suspect_fraction"] == pytest.approx(suspect / len(survey))
        # The legacy key remains the (conflated) aggregate of the two.
        assert headline["undersampled_or_suspect_fraction"] == \
            pytest.approx(headline["marginal_fraction"] + headline["aliased_suspect_fraction"])
        # The suspect bucket contains no reliable pairs.
        assert all(not r.reliable for r in survey.records
                   if r.category is PairCategory.ALIASED_SUSPECT)

    def test_figure1_fractions_in_unit_interval(self, survey):
        fractions = survey.oversampled_fraction_by_metric()
        assert set(fractions) == set(survey.metrics())
        for value in fractions.values():
            assert 0.0 <= value <= 1.0

    def test_figure4_ratios_exclude_unreliable(self, survey):
        ratios = survey.reduction_ratios()
        assert np.all(np.isfinite(ratios))
        assert np.all(ratios > 0)
        assert len(ratios) == sum(r.reliable for r in survey.records)

    def test_figure4_include_unreliable_represents_every_pair(self):
        """Regression: include_unreliable used to be a dead flag (unreliable
        pairs have nan ratios, which the nan-filter then removed)."""
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5, broadband_fraction=0.5))
        # A sub-1.0 aliased-band threshold makes the planted broadband pairs
        # (whose energy reaches essentially the band edge) actually refuse.
        result = run_survey(dataset, estimator=NyquistEstimator(aliased_band_fraction=0.9))
        unreliable = sum(not r.reliable for r in result.records)
        assert unreliable > 0  # half of the pairs are planted broadband
        ratios_all = result.reduction_ratios(include_unreliable=True)
        ratios_reliable = result.reduction_ratios(include_unreliable=False)
        assert len(ratios_all) == len(result.records)
        assert len(ratios_all) - len(ratios_reliable) == unreliable
        # Unreliable pairs enter at the conservative "no reduction" ratio.
        assert np.all(np.isfinite(ratios_all))
        assert (ratios_all == 1.0).sum() >= unreliable

    def test_figure4_per_metric_filter(self, survey):
        all_ratios = survey.reduction_ratios()
        temperature = survey.reduction_ratios("Temperature")
        assert len(temperature) <= len(all_ratios)

    def test_figure5_rates_positive(self, survey):
        for metric in survey.metrics():
            rates = survey.nyquist_rates(metric)
            assert np.all(rates > 0)
            # Estimated rates never exceed the production sampling rate.
            records = survey.records_for_metric(metric)
            assert np.all(rates <= max(record.current_rate for record in records) + 1e-12)

    def test_heavy_tail_of_reduction_ratios(self, survey):
        headline = survey.headline()
        assert headline["reducible_10x_fraction"] > 0.4
        assert headline["reducible_100x_fraction"] > 0.1

    def test_temperature_range_reported(self, survey):
        headline = survey.headline()
        assert headline["temperature_nyquist_min_hz"] <= headline["temperature_nyquist_max_hz"]

    def test_estimation_accuracy_near_truth(self, survey):
        accuracy = survey.estimation_accuracy()
        assert accuracy["pairs"] > 0
        # The median estimate should be within a factor of ~4 of the planted
        # ground-truth bandwidth (the estimator sees quantisation + noise).
        assert 0.25 <= accuracy["median_ratio"] <= 4.0

    def test_empty_survey_headline(self):
        assert SurveyResult().headline() == {"pairs": 0.0}

    def test_categories_are_consistent(self, survey):
        for record in survey.records:
            if record.category is PairCategory.ALIASED_SUSPECT:
                assert not record.reliable
            if record.category is PairCategory.OVERSAMPLED:
                assert record.reduction_ratio > survey.oversample_threshold

    def test_backend_equivalence(self):
        """The batched engine must reproduce the scalar reference exactly."""
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        scalar = run_survey(dataset, backend="scalar")
        batched = run_survey(dataset, backend="batched")
        assert len(scalar.records) == len(batched.records)
        for a, b in zip(scalar.records, batched.records):
            assert (a.metric_name, a.device_id) == (b.metric_name, b.device_id)
            assert a.category is b.category
            assert a.reliable == b.reliable
            assert np.isclose(a.nyquist_rate, b.nyquist_rate)
            if a.reliable:
                assert np.isclose(a.reduction_ratio, b.reduction_ratio)

    def test_batched_chunking_preserves_records(self):
        dataset = FleetDataset(DatasetConfig(pair_count=56, seed=5))
        whole = run_survey(dataset, backend="batched", chunk_size=1024)
        chunked = run_survey(dataset, backend="batched", chunk_size=3)
        assert [(r.metric_name, r.device_id, r.nyquist_rate) for r in whole.records] == \
            [(r.metric_name, r.device_id, r.nyquist_rate) for r in chunked.records]

    def test_rejects_unknown_backend(self):
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        with pytest.raises(ValueError, match="backend"):
            run_survey(dataset, backend="gpu")  # type: ignore[arg-type]

    def test_custom_estimator_is_used(self):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        strict = run_survey(dataset, estimator=NyquistEstimator(energy_fraction=0.9999))
        default = run_survey(dataset)
        # A stricter energy threshold never lowers the estimated rates.
        strict_rates = {(r.metric_name, r.device_id): r.nyquist_rate
                        for r in strict.records if r.reliable}
        for record in default.records:
            key = (record.metric_name, record.device_id)
            if record.reliable and key in strict_rates:
                assert strict_rates[key] >= record.nyquist_rate - 1e-12


class TestColumnarStorage:
    def test_records_view_matches_blocks(self, survey):
        records = survey.records
        assert len(records) == len(survey)
        total = sum(len(block) for block in survey.iter_blocks())
        assert total == len(survey)
        # The per-pair view carries the same data as the columns.
        index = 0
        for block in survey.iter_blocks():
            for offset in range(len(block)):
                record = records[index]
                assert record.metric_name == block.metric_name
                assert record.device_id == str(block.device_ids[offset])
                assert record.nyquist_rate == block.nyquist_rate[offset]
                index += 1

    def test_survey_result_from_records_round_trip(self, survey):
        rebuilt = SurveyResult(records=survey.records,
                               oversample_threshold=survey.oversample_threshold)
        assert len(rebuilt) == len(survey)
        assert rebuilt.metrics() == survey.metrics()
        assert rebuilt.headline() == survey.headline()
        assert np.array_equal(rebuilt.reduction_ratios(), survey.reduction_ratios())

    def test_block_npz_round_trip(self, survey, tmp_path):
        block = next(iter(survey.iter_blocks()))
        block.save_npz(tmp_path / "block.npz")
        loaded = RecordBlock.load_npz(tmp_path / "block.npz")
        assert_blocks_byte_identical([block], [loaded])

    def test_block_csv_round_trip(self, survey, tmp_path):
        block = next(iter(survey.iter_blocks()))
        block.save_csv(tmp_path / "block.csv")
        loaded = RecordBlock.load_csv(tmp_path / "block.csv")
        assert_blocks_byte_identical([block], [loaded])

    @staticmethod
    def _empty_block(metric_name: str) -> RecordBlock:
        return RecordBlock(metric_name=metric_name, device_ids=[], current_rate=[],
                           nyquist_rate=[], reduction_ratio=[], category=[],
                           reliable=[], true_nyquist_rate=[], trace_duration=[])

    @pytest.mark.parametrize("fmt", ["npz", "csv"])
    def test_empty_block_round_trip_keeps_metric(self, tmp_path, fmt):
        """Regression: csv blocks stored the metric only per data row, so a
        zero-row block came back with metric_name == ''."""
        block = self._empty_block("Temperature")
        path = tmp_path / f"block.{fmt}"
        if fmt == "npz":
            block.save_npz(path)
            loaded = RecordBlock.load_npz(path)
        else:
            block.save_csv(path)
            loaded = RecordBlock.load_csv(path)
        assert loaded.metric_name == "Temperature"
        assert len(loaded) == 0
        assert_blocks_byte_identical([block], [loaded])

    def test_load_csv_on_empty_file_raises_value_error(self, tmp_path):
        """Regression: an empty file used to escape as a bare StopIteration
        from next(reader)."""
        path = tmp_path / "records-00000.csv"
        path.write_text("")
        with pytest.raises(ValueError, match=str(path)):
            RecordBlock.load_csv(path)

    def test_load_csv_on_truncated_header_raises_value_error(self, tmp_path):
        path = tmp_path / "records-00000.csv"
        path.write_text("metric_name,device_id\n")
        with pytest.raises(ValueError, match="unexpected CSV header"):
            RecordBlock.load_csv(path)

    def test_load_csv_on_truncated_row_raises_value_error(self, survey, tmp_path):
        block = next(iter(survey.iter_blocks()))
        path = tmp_path / "records-00000.csv"
        block.save_csv(path)
        content = path.read_text()
        path.write_text(content[: content.rstrip().rfind(",")])  # cut the last row short
        with pytest.raises(ValueError, match="corrupt or truncated record file"):
            RecordBlock.load_csv(path)

    def test_load_npz_on_corrupt_file_raises_value_error(self, tmp_path):
        path = tmp_path / "records-00000.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(ValueError, match="corrupt or truncated record file"):
            RecordBlock.load_npz(path)

    def test_load_npz_on_truncated_file_raises_value_error(self, survey, tmp_path):
        block = next(iter(survey.iter_blocks()))
        path = tmp_path / "records-00000.npz"
        block.save_npz(path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ValueError, match="corrupt or truncated record file"):
            RecordBlock.load_npz(path)

    def test_legacy_csv_without_metric_comment_still_loads(self, survey, tmp_path):
        """Spill files written before the metric comment line existed must
        keep loading (metric recovered from the data rows)."""
        block = next(iter(survey.iter_blocks()))
        path = tmp_path / "records-00000.csv"
        block.save_csv(path)
        lines = path.read_text().splitlines(keepends=True)
        assert lines[0].startswith("# metric=")
        path.write_text("".join(lines[1:]))
        loaded = RecordBlock.load_csv(path)
        assert_blocks_byte_identical([block], [loaded])

    def test_csv_spill_sink_row_count_skips_comment_line(self, survey, tmp_path):
        block = next(iter(survey.iter_blocks()))
        sink = SpillingRecordSink(tmp_path / "spool", fmt="csv")
        sink.append(block)
        reopened = SpillingRecordSink(tmp_path / "spool", fmt="csv")
        assert reopened.rows == len(block)


class TestParallelWorkers:
    def test_worker_count_invariance(self):
        """workers=1 and workers=4 must produce byte-identical records."""
        dataset = FleetDataset(DatasetConfig(pair_count=56, seed=5))
        single = run_survey(dataset, workers=1, chunk_size=3)
        pooled = run_survey(dataset, workers=4, chunk_size=3)
        assert len(single) == len(pooled) == 56
        assert_blocks_byte_identical(single.iter_blocks(), pooled.iter_blocks())
        assert single.headline() == pooled.headline()

    def test_workers_respect_limit_and_metrics(self):
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        single = run_survey(dataset, workers=1, limit_per_metric=2,
                            metrics=["Temperature", "Link util"])
        pooled = run_survey(dataset, workers=2, limit_per_metric=2,
                            metrics=["Temperature", "Link util"])
        assert len(single) == len(pooled) == 4
        assert_blocks_byte_identical(single.iter_blocks(), pooled.iter_blocks())

    def test_workers_rejects_scalar_backend(self):
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        with pytest.raises(ValueError, match="batched"):
            run_survey(dataset, workers=2, backend="scalar")

    def test_rejects_bad_worker_count(self):
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        with pytest.raises(ValueError, match="workers"):
            run_survey(dataset, workers=0)


class TestSpillToDisk:
    def test_spilled_aggregations_identical_to_memory(self, tmp_path):
        """The out-of-core path must aggregate exactly like the in-memory path."""
        dataset = FleetDataset(DatasetConfig(pair_count=56, seed=5))
        sink = SpillingRecordSink(tmp_path / "spool")
        spilled = run_survey(dataset, chunk_size=5, sink=sink)
        memory = run_survey(dataset, chunk_size=5)

        assert len(sink.files) > 1  # the spill path was actually exercised
        assert spilled.headline() == memory.headline()
        assert spilled.oversampled_fraction_by_metric() == \
            memory.oversampled_fraction_by_metric()
        assert spilled.estimation_accuracy() == memory.estimation_accuracy()
        for metric in memory.metrics():
            assert np.array_equal(spilled.nyquist_rates(metric),
                                  memory.nyquist_rates(metric))
            assert np.array_equal(spilled.reduction_ratios(metric),
                                  memory.reduction_ratios(metric))
        assert np.array_equal(spilled.reduction_ratios(include_unreliable=True),
                              memory.reduction_ratios(include_unreliable=True))
        assert_blocks_byte_identical(spilled.iter_blocks(), memory.iter_blocks())

    def test_spill_directory_reopens(self, tmp_path):
        """A spilled survey can be re-opened from its directory in a new result."""
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        original = run_survey(dataset, chunk_size=4,
                              sink=SpillingRecordSink(tmp_path / "spool"))
        reopened = SurveyResult(sink=SpillingRecordSink(tmp_path / "spool"))
        assert len(reopened) == len(original)
        assert reopened.metrics() == original.metrics()
        assert reopened.headline() == original.headline()

    def test_csv_spill_format(self, tmp_path):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        spilled = run_survey(dataset, chunk_size=4,
                             sink=SpillingRecordSink(tmp_path / "spool", fmt="csv"))
        memory = run_survey(dataset, chunk_size=4)
        assert spilled.headline() == memory.headline()
        assert all(path.suffix == ".csv" for path in spilled.sink.files)

    def test_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            SpillingRecordSink(tmp_path, fmt="parquet")  # type: ignore[arg-type]

    def test_run_survey_rejects_non_empty_sink(self, tmp_path):
        """Regression: re-running a survey into a used spill directory must
        fail loudly instead of silently merging duplicate records."""
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        run_survey(dataset, sink=SpillingRecordSink(tmp_path / "spool"))
        with pytest.raises(ValueError, match="already holds"):
            run_survey(dataset, sink=SpillingRecordSink(tmp_path / "spool"))

    def test_spill_with_workers(self, tmp_path):
        """Spilling composes with the worker pool (parent-side sink)."""
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        spilled = run_survey(dataset, workers=2, chunk_size=4,
                             sink=SpillingRecordSink(tmp_path / "spool"))
        memory = run_survey(dataset, workers=1, chunk_size=4)
        assert spilled.headline() == memory.headline()
        assert_blocks_byte_identical(spilled.iter_blocks(), memory.iter_blocks())


class TestMeasuredSurveyEquivalence:
    """The measured (file-backed) path must reproduce the in-memory survey
    byte for byte: same blocks, same order, any worker count or sink."""

    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory):
        dataset = FleetDataset(DatasetConfig(pair_count=56, seed=5))
        measured = dataset.export(tmp_path_factory.mktemp("measured") / "fleet")
        return dataset, measured

    def test_single_worker_byte_identical(self, fleet):
        dataset, measured = fleet
        memory = run_survey(dataset, chunk_size=3)
        recorded = run_survey(measured, chunk_size=3)
        assert len(recorded) == len(memory) == 56
        assert_blocks_byte_identical(memory.iter_blocks(), recorded.iter_blocks())
        assert memory.headline() == recorded.headline()

    def test_multi_worker_byte_identical(self, fleet):
        """Worker batch specs on the measured path are manifest file-offset
        slices; the reassembled records must equal the in-memory survey."""
        dataset, measured = fleet
        memory = run_survey(dataset, chunk_size=3)
        pooled = run_survey(measured, workers=4, chunk_size=3)
        assert_blocks_byte_identical(memory.iter_blocks(), pooled.iter_blocks())
        assert memory.headline() == pooled.headline()

    def test_workers_with_spill_sink(self, fleet, tmp_path):
        dataset, measured = fleet
        memory = run_survey(dataset, chunk_size=4)
        spilled = run_survey(measured, workers=2, chunk_size=4,
                             sink=SpillingRecordSink(tmp_path / "spool"))
        assert_blocks_byte_identical(memory.iter_blocks(), spilled.iter_blocks())
        assert memory.estimation_accuracy() == spilled.estimation_accuracy()

    def test_metric_and_limit_filters(self, fleet):
        dataset, measured = fleet
        memory = run_survey(dataset, metrics=["Temperature", "Link util"],
                            limit_per_metric=2)
        recorded = run_survey(measured, metrics=["Temperature", "Link util"],
                              limit_per_metric=2)
        assert_blocks_byte_identical(memory.iter_blocks(), recorded.iter_blocks())

    def test_csv_trace_files_byte_identical(self, tmp_path):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        measured = dataset.export(tmp_path / "fleet", fmt="csv")
        memory = run_survey(dataset, chunk_size=4)
        recorded = run_survey(measured, workers=2, chunk_size=4)
        assert_blocks_byte_identical(memory.iter_blocks(), recorded.iter_blocks())

    def test_reopened_directory_surveys_identically(self, fleet):
        dataset, measured = fleet
        reopened = MeasuredFleetDataset(measured.directory)
        assert_blocks_byte_identical(run_survey(dataset).iter_blocks(),
                                     run_survey(reopened).iter_blocks())

    def test_windowed_survey_runs_on_measured_fleet(self, fleet):
        dataset, measured = fleet
        from_memory = run_windowed_survey(dataset, metrics=["Temperature"],
                                          limit_per_metric=1)
        from_disk = run_windowed_survey(measured, metrics=["Temperature"],
                                        limit_per_metric=1)
        assert from_memory == from_disk


#: Metrics whose broadband variant genuinely fills the measurable band
#: (continuous gauges/counters); sparse burst metrics (drops, discards,
#: errors) stay low-band even when flagged broadband.
CONTINUOUS_METRICS = ("Temperature", "Link util", "Memory usage", "5-pct CPU util",
                      "Unicast bytes", "Multicast bytes", "Lossy paths")


class TestAliasedBandCalibration:
    def test_default_is_calibrated_below_one(self):
        assert DEFAULT_ALIASED_BAND_FRACTION == 0.9
        assert NyquistEstimator().aliased_band_fraction == DEFAULT_ALIASED_BAND_FRACTION

    def test_planted_broadband_pairs_are_refused(self):
        """Regression: the strict 1.0 default never fired on day-length
        synthetic traces -- planted broadband pairs came back MARGINAL
        instead of reproducing the paper's "record -1" behaviour."""
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=11,
                                             broadband_fraction=1.0,
                                             metrics=CONTINUOUS_METRICS))
        result = run_survey(dataset)
        assert all(record.category is PairCategory.ALIASED_SUSPECT
                   for record in result.records)

    def test_clean_pairs_are_never_refused(self):
        """The calibrated default must not flag band-limited pairs."""
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=11,
                                             broadband_fraction=0.0))
        result = run_survey(dataset)
        assert not any(record.category is PairCategory.ALIASED_SUSPECT
                       for record in result.records)

    def test_strict_rule_still_available(self):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=11,
                                             broadband_fraction=1.0,
                                             metrics=CONTINUOUS_METRICS))
        strict = run_survey(dataset, estimator=NyquistEstimator(aliased_band_fraction=1.0))
        calibrated = run_survey(dataset)
        strict_suspects = sum(r.category is PairCategory.ALIASED_SUSPECT
                              for r in strict.records)
        calibrated_suspects = sum(r.category is PairCategory.ALIASED_SUSPECT
                                  for r in calibrated.records)
        assert calibrated_suspects > strict_suspects


#: The sparse burst metrics of the catalogue: drops, discards and error
#: counts, whose traces are near-zero baselines with isolated episodes.
BURST_METRICS = ("Unicast drops", "Multicast drops", "In-bound discards",
                 "Out-bound discards", "FCS errors")


class TestBurstAliasingRegression:
    """Burst-aware aliasing behaviour of the calibrated refusal rule.

    Sparse burst metrics (drops/discards/errors) planted as "broadband"
    do *not* actually fill the measurable band the way continuous
    broadband gauges do -- their energy stays concentrated in isolated
    episodes, so the §3.2 energy cut-off lands below the calibrated
    ``aliased_band_fraction=0.9`` edge for the overwhelming majority of
    pairs.  Today's intended behaviour, pinned here against future
    regressions of the rule or the burst models: such pairs come back
    RELIABLE (OVERSAMPLED/MARGINAL) rather than refused, while continuous
    broadband pairs are still refused wholesale.
    """

    @pytest.fixture(scope="class")
    def burst_survey(self):
        dataset = FleetDataset(DatasetConfig(pair_count=50, seed=7,
                                             broadband_fraction=1.0,
                                             metrics=BURST_METRICS))
        return run_survey(dataset)

    def test_planted_burst_pairs_stay_predominantly_reliable(self, burst_survey):
        records = burst_survey.records
        assert len(records) == 50
        refused = sum(r.category is PairCategory.ALIASED_SUSPECT for r in records)
        # The calibrated rule must not refuse bursty metrics wholesale:
        # at most a quarter of planted pairs (the rare trace whose bursts
        # genuinely whiten the whole band) may land in ALIASED_SUSPECT.
        assert refused <= len(records) // 4
        reliable = [r for r in records if r.reliable]
        assert len(reliable) >= 3 * len(records) // 4
        assert all(r.category in (PairCategory.OVERSAMPLED, PairCategory.MARGINAL)
                   for r in reliable)

    def test_some_fully_whitened_bursts_are_still_caught(self, burst_survey):
        # The rule is calibrated, not blind: a planted-broadband burst
        # fleet still produces *some* refusals (drop to zero and the
        # refusal rule has effectively stopped firing on bursty traces,
        # which would be its own regression).
        refused = sum(r.category is PairCategory.ALIASED_SUSPECT
                      for r in burst_survey.records)
        assert refused >= 1

    def test_contrast_continuous_broadband_is_refused_wholesale(self):
        dataset = FleetDataset(DatasetConfig(pair_count=20, seed=7,
                                             broadband_fraction=1.0,
                                             metrics=("Temperature", "Link util")))
        result = run_survey(dataset)
        assert all(r.category is PairCategory.ALIASED_SUSPECT for r in result.records)

    def test_clean_burst_pairs_are_reliable_too(self):
        # Without planted broadband the burst metrics must survey cleanly
        # (no refusals at all): episodes alone do not trip the rule.
        dataset = FleetDataset(DatasetConfig(pair_count=25, seed=7,
                                             broadband_fraction=0.0,
                                             metrics=BURST_METRICS))
        result = run_survey(dataset)
        assert all(r.reliable for r in result.records)


class TestWindowedSurvey:
    def test_fleet_windowed_sweep(self):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        summaries = run_windowed_survey(dataset, limit_per_metric=1)
        assert len(summaries) == 14
        for summary in summaries:
            assert summary.reliable_windows <= summary.windows
            if summary.reliable_windows:
                assert summary.min_rate <= summary.mean_rate <= summary.max_rate
        # Day-length traces admit a dense 6h/5min sweep on most metrics.
        assert sum(s.windows > 0 for s in summaries) >= 10

    def test_metric_restriction(self):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        summaries = run_windowed_survey(dataset, metrics=["Temperature"],
                                        limit_per_metric=2)
        assert len(summaries) == 2
        assert all(s.metric_name == "Temperature" for s in summaries)


# ----------------------------------------------------------------------
# Quarantine mode (on_error="quarantine") under a seeded fault plan
# ----------------------------------------------------------------------
def assert_failure_blocks_byte_identical(left, right) -> None:
    """Column-for-column exact equality of two failure block streams."""
    left_blocks, right_blocks = list(left), list(right)
    assert len(left_blocks) == len(right_blocks)
    for a, b in zip(left_blocks, right_blocks):
        for column in ("device_ids", "metric_names", "stages", "error_types",
                       "messages", "provenances"):
            assert np.array_equal(getattr(a, column), getattr(b, column)), column


class TestQuarantineEquivalence:
    """``on_error="quarantine"`` must complete with every healthy pair's
    record bit-identical to a clean run, every injected fault accounted
    for exactly once, at any worker count and through any sink."""

    PLAN = FaultPlan(seed=3, fraction=0.15,
                     kinds=("corrupt-trace", "truncated-trace"))

    @pytest.fixture(scope="class")
    def dataset(self):
        return FleetDataset(DatasetConfig(pair_count=56, seed=5))

    @pytest.fixture(scope="class")
    def chaotic(self, dataset):
        return FaultInjectingTraceSource(dataset, self.PLAN)

    @pytest.fixture(scope="class")
    def faulty_keys(self, dataset):
        return {pair.key for pair in dataset.pairs()
                if self.PLAN.affects(*pair.key)}

    @pytest.fixture(scope="class")
    def quarantined_survey(self, chaotic):
        return run_survey(chaotic, chunk_size=4, on_error="quarantine")

    def test_seeded_plan_actually_injects(self, dataset, faulty_keys):
        assert 0 < len(faulty_keys) < len(dataset.pairs())

    def test_raise_mode_fails_fast(self, chaotic):
        with pytest.raises(ValueError, match="corrupt or truncated"):
            run_survey(chaotic, chunk_size=4)

    def test_raise_mode_fails_fast_with_workers(self, chaotic):
        with pytest.raises(BatchExecutionError, match="corrupt or truncated"):
            run_survey(chaotic, chunk_size=4, workers=2)

    def test_every_fault_quarantined_exactly_once(self, quarantined_survey,
                                                  faulty_keys):
        failures = quarantined_survey.quarantined
        assert len(failures) == len(faulty_keys)
        assert {(f.metric_name, f.device_id) for f in failures} == faulty_keys
        assert all(f.stage == "trace" and f.error_type == "ValueError"
                   for f in failures)
        assert quarantined_survey.quarantined_count == len(faulty_keys)

    def test_healthy_pairs_byte_identical_to_clean_run(self, dataset, faulty_keys,
                                                       quarantined_survey):
        clean = {(r.metric_name, r.device_id): r
                 for r in run_survey(dataset, chunk_size=4).records}
        salvaged = quarantined_survey.records
        assert len(salvaged) == len(clean) - len(faulty_keys)
        for record in salvaged:
            twin = clean[(record.metric_name, record.device_id)]
            assert (record.category, record.reliable) == \
                (twin.category, twin.reliable)
            for field in ("current_rate", "nyquist_rate", "reduction_ratio",
                          "true_nyquist_rate", "trace_duration"):
                assert np.array_equal(getattr(record, field),
                                      getattr(twin, field), equal_nan=True), field

    def test_headline_reports_quarantine(self, quarantined_survey, faulty_keys):
        assert quarantined_survey.headline()["quarantined_pairs"] == \
            float(len(faulty_keys))

    def test_worker_counts_byte_identical(self, chaotic, quarantined_survey):
        pooled = run_survey(chaotic, chunk_size=4, workers=2,
                            on_error="quarantine")
        assert_blocks_byte_identical(quarantined_survey.iter_blocks(),
                                     pooled.iter_blocks())
        assert_failure_blocks_byte_identical(
            quarantined_survey.iter_failure_blocks(),
            pooled.iter_failure_blocks())

    def test_spilling_sinks_byte_identical(self, chaotic, quarantined_survey,
                                           tmp_path):
        spilled = run_survey(
            chaotic, chunk_size=4, workers=2, on_error="quarantine",
            sink=SpillingRecordSink(tmp_path / "records"),
            failure_sink=SpillingRecordSink(tmp_path / "failures"))
        assert_blocks_byte_identical(quarantined_survey.iter_blocks(),
                                     spilled.iter_blocks())
        assert_failure_blocks_byte_identical(
            quarantined_survey.iter_failure_blocks(),
            spilled.iter_failure_blocks())
        reopened = SurveyResult(
            failure_sink=SpillingRecordSink(tmp_path / "failures"))
        assert reopened.quarantined_count == quarantined_survey.quarantined_count

    def test_transient_io_error_recovers_via_retry(self, dataset, tmp_path):
        plan = FaultPlan(seed=4, fraction=0.2, kinds=("io-error",),
                         io_error_opens=1, state_dir=str(tmp_path / "state"))
        chaotic = FaultInjectingTraceSource(dataset, plan)
        assert any(plan.affects(*pair.key) for pair in dataset.pairs())
        survived = run_survey(chaotic, chunk_size=4, on_error="quarantine",
                              retry_sleep=lambda delay: None)
        assert survived.quarantined_count == 0
        clean = run_survey(dataset, chunk_size=4)
        assert_blocks_byte_identical(clean.iter_blocks(), survived.iter_blocks())

    def test_worker_crash_recovers_without_duplicates(self, dataset, tmp_path):
        metric = dataset.metric_names()[0]
        plan = FaultPlan(seed=6, fraction=0.0, crash_slices=((metric, 0),),
                         state_dir=str(tmp_path / "state"))
        chaotic = FaultInjectingTraceSource(dataset, plan)
        crashed = run_survey(chaotic, chunk_size=2, workers=2,
                             on_error="quarantine",
                             retry_sleep=lambda delay: None)
        assert crashed.quarantined_count == 0
        clean = run_survey(dataset, chunk_size=2, workers=2)
        assert len(clean) == len(crashed)
        assert_blocks_byte_identical(clean.iter_blocks(), crashed.iter_blocks())
