"""Unit tests for the fleet survey (Figures 1, 4, 5 and the headline stats)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.survey import PairCategory, SurveyResult, run_survey
from repro.core.nyquist import NyquistEstimator
from repro.telemetry.dataset import DatasetConfig, FleetDataset


@pytest.fixture(scope="module")
def survey():
    dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
    return run_survey(dataset)


class TestRunSurvey:
    def test_one_record_per_pair(self, survey):
        assert len(survey) == 84

    def test_records_carry_metric_and_device(self, survey):
        record = survey.records[0]
        assert record.metric_name
        assert record.device_id
        assert record.current_rate > 0

    def test_limit_per_metric(self):
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        limited = run_survey(dataset, limit_per_metric=2)
        assert len(limited) == 2 * 14

    def test_metric_subset(self):
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        result = run_survey(dataset, metrics=["Temperature", "Link util"])
        assert set(result.metrics()) == {"Temperature", "Link util"}

    def test_rejects_bad_threshold(self):
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        with pytest.raises(ValueError):
            run_survey(dataset, oversample_threshold=0.5)


class TestAggregations:
    def test_most_pairs_oversampled(self, survey):
        headline = survey.headline()
        assert headline["oversampled_fraction"] > 0.7
        # The three categories partition the survey.
        assert headline["oversampled_fraction"] + headline["marginal_fraction"] + \
            headline["aliased_suspect_fraction"] == pytest.approx(1.0)

    def test_headline_separates_marginal_from_aliased(self, survey):
        """Regression: marginal (reliable) pairs used to be folded into the
        suspect fraction, overstating the paper's ~11 % needs-inspection claim."""
        headline = survey.headline()
        marginal = sum(r.category is PairCategory.MARGINAL for r in survey.records)
        suspect = sum(r.category is PairCategory.ALIASED_SUSPECT for r in survey.records)
        assert headline["marginal_fraction"] == pytest.approx(marginal / len(survey))
        assert headline["aliased_suspect_fraction"] == pytest.approx(suspect / len(survey))
        # The legacy key remains the (conflated) aggregate of the two.
        assert headline["undersampled_or_suspect_fraction"] == \
            pytest.approx(headline["marginal_fraction"] + headline["aliased_suspect_fraction"])
        # The suspect bucket contains no reliable pairs.
        assert all(not r.reliable for r in survey.records
                   if r.category is PairCategory.ALIASED_SUSPECT)

    def test_figure1_fractions_in_unit_interval(self, survey):
        fractions = survey.oversampled_fraction_by_metric()
        assert set(fractions) == set(survey.metrics())
        for value in fractions.values():
            assert 0.0 <= value <= 1.0

    def test_figure4_ratios_exclude_unreliable(self, survey):
        ratios = survey.reduction_ratios()
        assert np.all(np.isfinite(ratios))
        assert np.all(ratios > 0)
        assert len(ratios) == sum(r.reliable for r in survey.records)

    def test_figure4_include_unreliable_represents_every_pair(self):
        """Regression: include_unreliable used to be a dead flag (unreliable
        pairs have nan ratios, which the nan-filter then removed)."""
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5, broadband_fraction=0.5))
        # A sub-1.0 aliased-band threshold makes the planted broadband pairs
        # (whose energy reaches essentially the band edge) actually refuse.
        result = run_survey(dataset, estimator=NyquistEstimator(aliased_band_fraction=0.9))
        unreliable = sum(not r.reliable for r in result.records)
        assert unreliable > 0  # half of the pairs are planted broadband
        ratios_all = result.reduction_ratios(include_unreliable=True)
        ratios_reliable = result.reduction_ratios(include_unreliable=False)
        assert len(ratios_all) == len(result.records)
        assert len(ratios_all) - len(ratios_reliable) == unreliable
        # Unreliable pairs enter at the conservative "no reduction" ratio.
        assert np.all(np.isfinite(ratios_all))
        assert (ratios_all == 1.0).sum() >= unreliable

    def test_figure4_per_metric_filter(self, survey):
        all_ratios = survey.reduction_ratios()
        temperature = survey.reduction_ratios("Temperature")
        assert len(temperature) <= len(all_ratios)

    def test_figure5_rates_positive(self, survey):
        for metric in survey.metrics():
            rates = survey.nyquist_rates(metric)
            assert np.all(rates > 0)
            # Estimated rates never exceed the production sampling rate.
            records = survey.records_for_metric(metric)
            assert np.all(rates <= max(record.current_rate for record in records) + 1e-12)

    def test_heavy_tail_of_reduction_ratios(self, survey):
        headline = survey.headline()
        assert headline["reducible_10x_fraction"] > 0.4
        assert headline["reducible_100x_fraction"] > 0.1

    def test_temperature_range_reported(self, survey):
        headline = survey.headline()
        assert headline["temperature_nyquist_min_hz"] <= headline["temperature_nyquist_max_hz"]

    def test_estimation_accuracy_near_truth(self, survey):
        accuracy = survey.estimation_accuracy()
        assert accuracy["pairs"] > 0
        # The median estimate should be within a factor of ~4 of the planted
        # ground-truth bandwidth (the estimator sees quantisation + noise).
        assert 0.25 <= accuracy["median_ratio"] <= 4.0

    def test_empty_survey_headline(self):
        assert SurveyResult().headline() == {"pairs": 0.0}

    def test_categories_are_consistent(self, survey):
        for record in survey.records:
            if record.category is PairCategory.ALIASED_SUSPECT:
                assert not record.reliable
            if record.category is PairCategory.OVERSAMPLED:
                assert record.reduction_ratio > survey.oversample_threshold

    def test_backend_equivalence(self):
        """The batched engine must reproduce the scalar reference exactly."""
        dataset = FleetDataset(DatasetConfig(pair_count=84, seed=5))
        scalar = run_survey(dataset, backend="scalar")
        batched = run_survey(dataset, backend="batched")
        assert len(scalar.records) == len(batched.records)
        for a, b in zip(scalar.records, batched.records):
            assert (a.metric_name, a.device_id) == (b.metric_name, b.device_id)
            assert a.category is b.category
            assert a.reliable == b.reliable
            assert np.isclose(a.nyquist_rate, b.nyquist_rate)
            if a.reliable:
                assert np.isclose(a.reduction_ratio, b.reduction_ratio)

    def test_batched_chunking_preserves_records(self):
        dataset = FleetDataset(DatasetConfig(pair_count=56, seed=5))
        whole = run_survey(dataset, backend="batched", chunk_size=1024)
        chunked = run_survey(dataset, backend="batched", chunk_size=3)
        assert [(r.metric_name, r.device_id, r.nyquist_rate) for r in whole.records] == \
            [(r.metric_name, r.device_id, r.nyquist_rate) for r in chunked.records]

    def test_rejects_unknown_backend(self):
        dataset = FleetDataset(DatasetConfig(pair_count=14, seed=5))
        with pytest.raises(ValueError, match="backend"):
            run_survey(dataset, backend="gpu")  # type: ignore[arg-type]

    def test_custom_estimator_is_used(self):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5))
        strict = run_survey(dataset, estimator=NyquistEstimator(energy_fraction=0.9999))
        default = run_survey(dataset)
        # A stricter energy threshold never lowers the estimated rates.
        strict_rates = {(r.metric_name, r.device_id): r.nyquist_rate
                        for r in strict.records if r.reliable}
        for record in default.records:
            key = (record.metric_name, record.device_id)
            if record.reliable and key in strict_rates:
                assert strict_rates[key] >= record.nyquist_rate - 1e-12
