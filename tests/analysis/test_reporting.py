"""Unit tests for reporting helpers (CDFs, box stats, tables, CSV)."""

from __future__ import annotations

import csv
import math

import numpy as np
import pytest

from repro.analysis.reporting import (ascii_bar_chart, ascii_cdf, box_stats, cdf_at,
                                      empirical_cdf, format_table, write_csv)


class TestCdf:
    def test_empirical_cdf_sorted_and_ends_at_one(self):
        xs, ys = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(xs, [1.0, 2.0, 3.0])
        assert ys[-1] == pytest.approx(1.0)
        assert ys[0] == pytest.approx(1.0 / 3.0)

    def test_empirical_cdf_empty(self):
        xs, ys = empirical_cdf([])
        assert xs.size == 0 and ys.size == 0

    def test_cdf_at_thresholds(self):
        result = cdf_at([1.0, 2.0, 3.0, 4.0], [2.0, 10.0, 0.5])
        assert result[2.0] == pytest.approx(0.5)
        assert result[10.0] == pytest.approx(1.0)
        assert result[0.5] == pytest.approx(0.0)

    def test_cdf_at_empty_values(self):
        result = cdf_at([], [1.0])
        assert math.isnan(result[1.0])


class TestBoxStats:
    def test_five_number_summary(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.median == 3.0
        assert stats.maximum == 5.0
        assert stats.count == 5
        assert stats.p25 == pytest.approx(2.0)
        assert stats.p75 == pytest.approx(4.0)

    def test_nan_values_dropped(self):
        stats = box_stats([1.0, float("nan"), 3.0])
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)

    def test_empty_input(self):
        stats = box_stats([])
        assert stats.count == 0
        assert math.isnan(stats.median)

    def test_as_dict_keys(self):
        keys = set(box_stats([1.0]).as_dict())
        assert keys == {"min", "p25", "median", "p75", "max", "mean", "count"}


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 2.5}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_table_handles_nan_and_large_numbers(self):
        text = format_table([{"x": float("nan"), "y": 1.23e9, "z": 0.000012}])
        assert "nan" in text
        assert "e+09" in text or "1.23" in text

    def test_ascii_bar_chart_contains_labels(self):
        chart = ascii_bar_chart({"Temperature": 0.9, "Link util": 0.5}, maximum=1.0)
        assert "Temperature" in chart
        assert "#" in chart

    def test_ascii_bar_chart_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_ascii_cdf_renders_grid(self):
        chart = ascii_cdf([1.0, 10.0, 100.0, 1000.0])
        assert "*" in chart
        assert "log10" in chart

    def test_ascii_cdf_empty(self):
        assert ascii_cdf([]) == "(no data)"

    def test_ascii_cdf_linear_axis(self):
        chart = ascii_cdf([1.0, 2.0, 3.0], log_x=False)
        assert "log10" not in chart


class TestCsv:
    def test_write_and_read_back(self, tmp_path):
        rows = [{"metric": "Temperature", "ratio": 12.5}, {"metric": "Link util", "ratio": 3.0}]
        path = write_csv(tmp_path / "out" / "data.csv", rows)
        assert path.exists()
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert read[0]["metric"] == "Temperature"
        assert float(read[1]["ratio"]) == 3.0

    def test_write_empty_rows(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""

    def test_write_respects_column_order(self, tmp_path):
        rows = [{"b": 2, "a": 1}]
        path = write_csv(tmp_path / "cols.csv", rows, columns=["a", "b"])
        header = path.read_text().splitlines()[0]
        assert header == "a,b"
