"""Unit tests for the fleet-scale policy survey (cost vs quality at scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.policy_survey import PolicySurveyResult, run_policy_survey
from repro.faults import BatchExecutionError, FaultInjectingTraceSource, FaultPlan
from repro.network.cost import TelemetryCostAccountant
from repro.network.monitoring import DeploymentSpec, DeploymentTraceSource, MonitoringDeployment
from repro.network.topology import TopologySpec, build_leaf_spine
from repro.pipeline.evaluation import PolicyRecordBlock
from repro.pipeline.policies import FixedRatePolicy, NyquistStaticPolicy, PolicySuite
from repro.records import SpillingRecordSink
from repro.telemetry.dataset import DatasetConfig, FleetDataset

#: Columns every policy block must reproduce bit for bit across workers,
#: sinks and (for exported fleets) storage round trips.
POLICY_COLUMNS = ("device_ids", "samples", "mean_rate_hz", "nrmse", "max_abs_error",
                  "hops", "collection_cpu_us", "transmission", "storage_bytes",
                  "analysis", "detected", "detection_latency")


def assert_policy_blocks_byte_identical(left, right) -> None:
    """Column-for-column exact equality of two policy block streams."""
    left_blocks, right_blocks = list(left), list(right)
    assert len(left_blocks) == len(right_blocks)
    for a, b in zip(left_blocks, right_blocks):
        assert (a.metric_name, a.policy_name) == (b.metric_name, b.policy_name)
        for column in POLICY_COLUMNS:
            assert np.array_equal(getattr(a, column), getattr(b, column),
                                  equal_nan=getattr(a, column).dtype == np.float64), \
                (column, a.metric_name, a.policy_name)


@pytest.fixture(scope="module")
def demo_spec() -> DeploymentSpec:
    return DeploymentSpec(
        topology=TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=1),
        trace_duration=21600.0, seed=11, oversample_factor=4.0)


@pytest.fixture(scope="module")
def demo_accountant(demo_spec) -> TelemetryCostAccountant:
    graph, collector = demo_spec.build_topology()
    return TelemetryCostAccountant(topology=graph, collector=collector)


@pytest.fixture(scope="module")
def demo_suite() -> PolicySuite:
    return PolicySuite(production_oversample=4.0, adaptive_window=2 * 3600.0)


@pytest.fixture(scope="module")
def demo_survey(demo_spec, demo_accountant, demo_suite) -> PolicySurveyResult:
    return run_policy_survey(demo_spec.open(), demo_suite, accountant=demo_accountant)


class TestRunPolicySurvey:
    def test_one_row_per_point_and_policy(self, demo_spec, demo_survey):
        points = len(demo_spec.open())
        assert len(demo_survey) == points * 3
        rows = demo_survey.rows()
        assert [row["policy"] for row in rows] == \
            ["fixed", "nyquist-static", "adaptive-dual-rate"]
        assert all(row["points"] == points for row in rows)

    def test_reproduces_paper_cost_ordering(self, demo_survey):
        """The acceptance claim: fixed > Nyquist-static > adaptive total cost
        at matched (bounded-nrmse) quality on the demo deployment."""
        relative = demo_survey.relative_costs("fixed")
        assert relative["fixed"] == pytest.approx(1.0)
        assert relative["nyquist-static"] < 1.0
        assert relative["adaptive-dual-rate"] < relative["nyquist-static"]
        by_policy = {row["policy"]: row for row in demo_survey.rows()}
        assert by_policy["fixed"]["mean_nrmse"] < 0.1
        assert by_policy["nyquist-static"]["mean_nrmse"] < 0.4
        assert by_policy["adaptive-dual-rate"]["mean_nrmse"] < 0.4

    def test_costs_are_hop_weighted(self, demo_survey, demo_accountant):
        """Transmission must reflect each node's real fabric distance."""
        for block in demo_survey.iter_blocks():
            model = demo_accountant.cost_model
            expected = (block.samples * model.bytes_per_sample * block.hops
                        * model.transmission_cost_per_byte_hop)
            assert np.array_equal(block.transmission, expected.astype(np.float64))
            hops = demo_accountant.hops_array([str(d) for d in block.device_ids])
            assert np.array_equal(block.hops, hops)

    def test_chunking_preserves_records(self, demo_spec, demo_accountant, demo_suite):
        source = demo_spec.open()
        whole = run_policy_survey(source, demo_suite, accountant=demo_accountant)
        chunked = run_policy_survey(source, demo_suite, accountant=demo_accountant,
                                    chunk_size=3)
        assert whole.rows() == chunked.rows()

    def test_metric_and_limit_filters(self, demo_spec, demo_accountant, demo_suite):
        result = run_policy_survey(demo_spec.open(), demo_suite,
                                   accountant=demo_accountant,
                                   metrics=["Temperature", "Link util"],
                                   limit_per_metric=2)
        assert set(result.metrics()) == {"Temperature", "Link util"}
        assert all(row["points"] == 4 for row in result.rows())

    def test_explicit_policy_sequence(self, demo_spec, demo_accountant):
        """A plain policy list (StaticPolicySuite coercion) works too."""
        policies = [FixedRatePolicy(120.0, name="baseline"),
                    NyquistStaticPolicy(production_interval=120.0)]
        result = run_policy_survey(demo_spec.open(), policies,
                                   accountant=demo_accountant,
                                   metrics=["Temperature"])
        assert result.policies() == ["baseline", "nyquist-static"]

    def test_relative_costs_unknown_baseline(self, demo_survey):
        with pytest.raises(KeyError):
            demo_survey.relative_costs("nope")

    def test_relative_costs_zero_baseline_raises(self, demo_spec, demo_suite):
        """Satellite fix: a zero-cost baseline must raise a clear ValueError
        naming the policy instead of propagating NaNs into reports."""
        from repro.network.cost import CostModel
        free = TelemetryCostAccountant(cost_model=CostModel(
            bytes_per_sample=0.0, collection_cpu_us=0.0,
            transmission_cost_per_byte_hop=0.0, storage_cost_per_byte=0.0,
            analysis_cost_per_sample=0.0))
        result = run_policy_survey(demo_spec.open(), demo_suite, accountant=free,
                                   metrics=["Temperature"])
        with pytest.raises(ValueError, match="'fixed'.*zero total cost"):
            result.relative_costs("fixed")

    def test_rejects_bad_worker_count(self, demo_spec, demo_suite):
        with pytest.raises(ValueError, match="workers"):
            run_policy_survey(demo_spec.open(), demo_suite, workers=0)

    def test_rejects_non_empty_sink(self, demo_spec, demo_accountant, demo_suite,
                                    tmp_path):
        run_policy_survey(demo_spec.open(), demo_suite, accountant=demo_accountant,
                          metrics=["Temperature"],
                          sink=SpillingRecordSink(tmp_path / "spool"))
        with pytest.raises(ValueError, match="already holds"):
            run_policy_survey(demo_spec.open(), demo_suite, accountant=demo_accountant,
                              metrics=["Temperature"],
                              sink=SpillingRecordSink(tmp_path / "spool"))

    def test_hand_built_deployment_needs_spec_for_workers(self):
        graph = build_leaf_spine(TopologySpec(num_spines=1, num_leaves=1,
                                              servers_per_leaf=0))
        source = DeploymentTraceSource(MonitoringDeployment(graph, trace_duration=7200.0))
        with pytest.raises(ValueError, match="spec"):
            source.worker_spec()


class TestPolicyRecordBlockStorage:
    @pytest.fixture(scope="class")
    def block(self, demo_survey) -> PolicyRecordBlock:
        return next(iter(demo_survey.iter_blocks()))

    def test_npz_round_trip(self, block, tmp_path):
        block.save_npz(tmp_path / "block.npz")
        loaded = PolicyRecordBlock.load_npz(tmp_path / "block.npz")
        assert_policy_blocks_byte_identical([block], [loaded])

    def test_csv_round_trip(self, block, tmp_path):
        block.save_csv(tmp_path / "block.csv")
        loaded = PolicyRecordBlock.load_csv(tmp_path / "block.csv")
        assert_policy_blocks_byte_identical([block], [loaded])

    def test_empty_block_round_trip_keeps_scalars(self, tmp_path):
        empty = PolicyRecordBlock(
            metric_name="Temperature", policy_name="fixed", device_ids=[], samples=[],
            mean_rate_hz=[], nrmse=[], max_abs_error=[], hops=[], collection_cpu_us=[],
            transmission=[], storage_bytes=[], analysis=[], detected=[],
            detection_latency=[])
        for fmt in ("npz", "csv"):
            path = tmp_path / f"block.{fmt}"
            getattr(empty, f"save_{fmt}")(path)
            loaded = getattr(PolicyRecordBlock, f"load_{fmt}")(path)
            assert (loaded.metric_name, loaded.policy_name) == ("Temperature", "fixed")
            assert len(loaded) == 0

    def test_corrupt_files_raise_value_error(self, tmp_path):
        npz = tmp_path / "records-00000.npz"
        npz.write_bytes(b"definitely not a zip archive")
        with pytest.raises(ValueError, match="corrupt or truncated record file"):
            PolicyRecordBlock.load_npz(npz)
        empty_csv = tmp_path / "records-00000.csv"
        empty_csv.write_text("")
        with pytest.raises(ValueError, match="missing CSV header"):
            PolicyRecordBlock.load_csv(empty_csv)

    def test_truncated_csv_row_raises(self, block, tmp_path):
        path = tmp_path / "records-00000.csv"
        block.save_csv(path)
        content = path.read_text()
        path.write_text(content[: content.rstrip().rfind(",")])
        with pytest.raises(ValueError, match="corrupt or truncated record file"):
            PolicyRecordBlock.load_csv(path)

    def test_point_evaluation_views(self, block):
        views = list(block.to_evaluations())
        assert len(views) == len(block)
        for index, view in enumerate(views):
            assert view.policy_name == block.policy_name
            assert view.metric_name == block.metric_name
            assert view.samples_collected == int(block.samples[index])
            assert view.cost.transmission == pytest.approx(block.transmission[index])
            assert view.detection is None  # fleet survey does not score events


class TestPolicyWorkerEquivalence:
    """The multi-worker policy survey must reproduce workers=1 byte for
    byte: same blocks, same order, any sink -- on a synthetic fleet, a
    deployment source, and an exported measured fleet."""

    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory):
        dataset = FleetDataset(DatasetConfig(pair_count=28, seed=5,
                                             trace_duration=21600.0))
        measured = dataset.export(tmp_path_factory.mktemp("measured") / "fleet")
        return dataset, measured

    @pytest.fixture(scope="class")
    def fleet_suite(self) -> PolicySuite:
        # Fleet traces are generated at production rate: oversample 1.
        return PolicySuite(production_oversample=1.0, adaptive_window=2 * 3600.0)

    def test_deployment_workers_byte_identical(self, demo_spec, demo_accountant,
                                               demo_suite):
        source = demo_spec.open()
        single = run_policy_survey(source, demo_suite, accountant=demo_accountant,
                                   chunk_size=3)
        pooled = run_policy_survey(source, demo_suite, accountant=demo_accountant,
                                   chunk_size=3, workers=2)
        assert_policy_blocks_byte_identical(single.iter_blocks(), pooled.iter_blocks())
        assert single.rows() == pooled.rows()

    def test_synthetic_fleet_workers_byte_identical(self, fleet, fleet_suite):
        dataset, _ = fleet
        single = run_policy_survey(dataset, fleet_suite, chunk_size=3)
        pooled = run_policy_survey(dataset, fleet_suite, chunk_size=3, workers=4)
        assert_policy_blocks_byte_identical(single.iter_blocks(), pooled.iter_blocks())

    def test_measured_fleet_workers_byte_identical(self, fleet, fleet_suite):
        """Worker batch specs on the measured path are manifest file-offset
        slices; the reassembled records must equal the in-memory run."""
        dataset, measured = fleet
        memory = run_policy_survey(dataset, fleet_suite, chunk_size=3)
        recorded = run_policy_survey(measured, fleet_suite, chunk_size=3, workers=2)
        assert_policy_blocks_byte_identical(memory.iter_blocks(), recorded.iter_blocks())
        assert memory.rows() == recorded.rows()

    def test_workers_with_spill_sink_and_reopen(self, fleet, fleet_suite, tmp_path):
        dataset, measured = fleet
        memory = run_policy_survey(dataset, fleet_suite, chunk_size=4)
        spilled = run_policy_survey(measured, fleet_suite, chunk_size=4, workers=2,
                                    sink=SpillingRecordSink(tmp_path / "spool"))
        assert_policy_blocks_byte_identical(memory.iter_blocks(), spilled.iter_blocks())
        reopened = PolicySurveyResult(sink=SpillingRecordSink(tmp_path / "spool"))
        assert reopened.rows() == memory.rows()
        assert reopened.relative_costs("fixed") == memory.relative_costs("fixed")
        assert reopened.policies() == memory.policies()

    def test_csv_spill_round_trip(self, demo_spec, demo_accountant, demo_suite,
                                  tmp_path):
        source = demo_spec.open()
        memory = run_policy_survey(source, demo_suite, accountant=demo_accountant,
                                   metrics=["Temperature", "Link util"])
        spilled = run_policy_survey(source, demo_suite, accountant=demo_accountant,
                                    metrics=["Temperature", "Link util"],
                                    sink=SpillingRecordSink(tmp_path / "spool",
                                                            fmt="csv"))
        assert_policy_blocks_byte_identical(memory.iter_blocks(), spilled.iter_blocks())
        reopened = PolicySurveyResult(
            sink=SpillingRecordSink(tmp_path / "spool", fmt="csv"))
        assert_policy_blocks_byte_identical(memory.iter_blocks(), reopened.iter_blocks())


# ----------------------------------------------------------------------
# Quarantine mode (on_error="quarantine") under a seeded fault plan
# ----------------------------------------------------------------------
def assert_failure_blocks_byte_identical(left, right) -> None:
    """Column-for-column exact equality of two failure block streams."""
    left_blocks, right_blocks = list(left), list(right)
    assert len(left_blocks) == len(right_blocks)
    for a, b in zip(left_blocks, right_blocks):
        for column in ("device_ids", "metric_names", "stages", "error_types",
                       "messages", "provenances"):
            assert np.array_equal(getattr(a, column), getattr(b, column)), column


class TestPolicyQuarantineEquivalence:
    """``on_error="quarantine"`` must drop exactly the faulty pairs from
    every policy's rows, keep healthy evaluations bit-identical to a
    clean run, and reproduce records *and* failure records byte for byte
    at any worker count and through any sink."""

    PLAN = FaultPlan(seed=3, fraction=0.18,
                     kinds=("corrupt-trace", "truncated-trace"))

    @pytest.fixture(scope="class")
    def dataset(self):
        return FleetDataset(DatasetConfig(pair_count=28, seed=5,
                                          trace_duration=21600.0))

    @pytest.fixture(scope="class")
    def suite(self) -> PolicySuite:
        return PolicySuite(production_oversample=1.0, adaptive_window=2 * 3600.0)

    @pytest.fixture(scope="class")
    def chaotic(self, dataset):
        return FaultInjectingTraceSource(dataset, self.PLAN)

    @pytest.fixture(scope="class")
    def faulty_keys(self, dataset):
        return {pair.key for pair in dataset.pairs()
                if self.PLAN.affects(*pair.key)}

    @pytest.fixture(scope="class")
    def clean_survey(self, dataset, suite):
        return run_policy_survey(dataset, suite, chunk_size=6)

    @pytest.fixture(scope="class")
    def quarantined_survey(self, chaotic, suite):
        return run_policy_survey(chaotic, suite, chunk_size=6,
                                 on_error="quarantine")

    def test_seeded_plan_actually_injects(self, dataset, faulty_keys):
        assert 0 < len(faulty_keys) < len(dataset.pairs())

    def test_raise_mode_fails_fast(self, chaotic, suite):
        with pytest.raises(ValueError, match="corrupt or truncated"):
            run_policy_survey(chaotic, suite, chunk_size=6)

    def test_raise_mode_fails_fast_with_workers(self, chaotic, suite):
        with pytest.raises(BatchExecutionError, match="corrupt or truncated"):
            run_policy_survey(chaotic, suite, chunk_size=6, workers=2)

    def test_every_fault_quarantined_exactly_once(self, quarantined_survey,
                                                  faulty_keys):
        failures = quarantined_survey.quarantined
        assert len(failures) == len(faulty_keys)
        assert {(f.metric_name, f.device_id) for f in failures} == faulty_keys
        assert all(f.stage == "trace" for f in failures)

    def test_row_accounting(self, clean_survey, quarantined_survey, faulty_keys):
        assert quarantined_survey.policies() == clean_survey.policies()
        clean_points = {row["policy"]: row["points"]
                        for row in clean_survey.rows()}
        for row in quarantined_survey.rows():
            assert row["points"] == clean_points[row["policy"]] - len(faulty_keys)

    def test_healthy_evaluations_byte_identical_to_clean_run(
            self, clean_survey, quarantined_survey, faulty_keys):
        def views(result):
            return {(v.policy_name, v.metric_name, v.point_name): v
                    for block in result.iter_blocks()
                    for v in block.to_evaluations()}
        clean, salvaged = views(clean_survey), views(quarantined_survey)
        assert set(clean) - set(salvaged) == {
            (policy, metric, device)
            for policy in clean_survey.policies()
            for metric, device in faulty_keys}
        for key, view in salvaged.items():
            twin = clean[key]
            assert view.samples_collected == twin.samples_collected
            for field in ("nrmse", "max_abs_error"):
                assert np.array_equal(getattr(view, field), getattr(twin, field),
                                      equal_nan=True), (key, field)
            assert view.cost == twin.cost

    def test_worker_counts_byte_identical(self, chaotic, suite,
                                          quarantined_survey):
        pooled = run_policy_survey(chaotic, suite, chunk_size=6, workers=2,
                                   on_error="quarantine")
        assert_policy_blocks_byte_identical(quarantined_survey.iter_blocks(),
                                            pooled.iter_blocks())
        assert_failure_blocks_byte_identical(
            quarantined_survey.iter_failure_blocks(),
            pooled.iter_failure_blocks())

    def test_spilling_sinks_byte_identical(self, chaotic, suite,
                                           quarantined_survey, tmp_path):
        spilled = run_policy_survey(
            chaotic, suite, chunk_size=6, workers=2, on_error="quarantine",
            sink=SpillingRecordSink(tmp_path / "records"),
            failure_sink=SpillingRecordSink(tmp_path / "failures"))
        assert_policy_blocks_byte_identical(quarantined_survey.iter_blocks(),
                                            spilled.iter_blocks())
        assert_failure_blocks_byte_identical(
            quarantined_survey.iter_failure_blocks(),
            spilled.iter_failure_blocks())
        reopened = PolicySurveyResult(
            failure_sink=SpillingRecordSink(tmp_path / "failures"))
        assert reopened.quarantined_count == quarantined_survey.quarantined_count

    def test_transient_io_error_recovers_via_retry(self, dataset, suite,
                                                   clean_survey, tmp_path):
        plan = FaultPlan(seed=4, fraction=0.2, kinds=("io-error",),
                         io_error_opens=1, state_dir=str(tmp_path / "state"))
        chaotic = FaultInjectingTraceSource(dataset, plan)
        assert any(plan.affects(*pair.key) for pair in dataset.pairs())
        survived = run_policy_survey(chaotic, suite, chunk_size=6,
                                     on_error="quarantine",
                                     retry_sleep=lambda delay: None)
        assert survived.quarantined_count == 0
        assert_policy_blocks_byte_identical(clean_survey.iter_blocks(),
                                            survived.iter_blocks())

    def test_worker_crash_recovers_without_duplicates(self, dataset, suite,
                                                      tmp_path):
        metric = dataset.metric_names()[0]
        plan = FaultPlan(seed=6, fraction=0.0, crash_slices=((metric, 0),),
                         state_dir=str(tmp_path / "state"))
        chaotic = FaultInjectingTraceSource(dataset, plan)
        crashed = run_policy_survey(chaotic, suite, chunk_size=2, workers=2,
                                    on_error="quarantine",
                                    retry_sleep=lambda delay: None)
        assert crashed.quarantined_count == 0
        clean = run_policy_survey(dataset, suite, chunk_size=2, workers=2)
        assert clean.rows() == crashed.rows()
        assert_policy_blocks_byte_identical(clean.iter_blocks(),
                                            crashed.iter_blocks())
