"""Unit tests for spectral estimation (periodogram / Welch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.psd import periodogram, power_spectrum, welch_psd, window_coefficients
from repro.signals.generators import constant, sine
from repro.signals.timeseries import TimeSeries


class TestWindowCoefficients:
    def test_rectangular_is_all_ones(self):
        np.testing.assert_allclose(window_coefficients("rectangular", 8), 1.0)

    def test_hann_tapers_to_zero(self):
        taper = window_coefficients("hann", 16)
        assert taper[0] == pytest.approx(0.0)
        assert taper[8] == pytest.approx(1.0, abs=0.05)

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            window_coefficients("kaiser", 8)  # type: ignore[arg-type]

    def test_length_one(self):
        np.testing.assert_allclose(window_coefficients("hann", 1), [1.0])

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            window_coefficients("hann", 0)


class TestPeriodogram:
    def test_peak_at_tone_frequency(self):
        series = sine(5.0, duration=2.0, sampling_rate=100.0)
        spectrum = periodogram(series)
        assert spectrum.without_dc().dominant_frequency() == pytest.approx(5.0, abs=0.5)

    def test_bin_count(self):
        series = sine(1.0, duration=1.0, sampling_rate=64.0)
        spectrum = periodogram(series)
        assert len(spectrum) == 64 // 2 + 1

    def test_parseval_total_power(self):
        # Sum of one-sided PSD bins equals the mean squared value.
        series = sine(4.0, duration=1.0, sampling_rate=64.0, amplitude=2.0, offset=1.0)
        spectrum = periodogram(series)
        assert spectrum.total_energy(include_dc=True) == pytest.approx(series.power(), rel=1e-6)

    def test_two_tone_has_two_peaks(self, two_tone):
        spectrum = periodogram(two_tone).without_dc()
        order = np.argsort(spectrum.power)[::-1][:2]
        peaks = sorted(spectrum.frequencies[order])
        assert peaks[0] == pytest.approx(400.0, abs=1.5)
        assert peaks[1] == pytest.approx(440.0, abs=1.5)

    def test_constant_signal_energy_in_dc_only(self):
        series = constant(5.0, 10.0, 10.0)
        spectrum = periodogram(series)
        assert spectrum.total_energy(include_dc=False) == pytest.approx(0.0, abs=1e-12)
        assert spectrum.power[0] > 0

    def test_detrend_removes_dc(self):
        series = constant(5.0, 10.0, 10.0)
        spectrum = periodogram(series, detrend=True)
        assert spectrum.power[0] == pytest.approx(0.0, abs=1e-12)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            periodogram(TimeSeries([1.0], 1.0))

    def test_hann_window_reduces_leakage(self):
        # A tone that is off-bin leaks; a Hann window confines the leakage.
        series = sine(5.3, duration=1.0, sampling_rate=100.0)
        rect = periodogram(series, window="rectangular").without_dc()
        hann = periodogram(series, window="hann").without_dc()
        # Fraction of energy within +/- 2 Hz of the tone:
        def near_tone(spec):
            return spec.band(3.3, 7.3).total_energy() / spec.total_energy()
        assert near_tone(hann) > near_tone(rect)


class TestWelch:
    def test_peak_at_tone_frequency(self):
        series = sine(5.0, duration=10.0, sampling_rate=100.0)
        spectrum = welch_psd(series, segment_length=256)
        assert spectrum.without_dc().dominant_frequency() == pytest.approx(5.0, abs=0.5)

    def test_segment_length_caps_at_series_length(self):
        series = sine(1.0, duration=1.0, sampling_rate=50.0)
        spectrum = welch_psd(series, segment_length=1024)
        assert len(spectrum) == len(series) // 2 + 1

    def test_rejects_bad_overlap(self):
        series = sine(1.0, 2.0, 50.0)
        with pytest.raises(ValueError):
            welch_psd(series, overlap=1.0)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            welch_psd(TimeSeries([1.0], 1.0))

    def test_trailing_samples_are_analysed(self):
        """Regression: Welch used to drop up to segment_length - 1 trailing
        samples when (n - segment_length) was not a multiple of the step.

        A burst placed entirely in the would-be-dropped tail must show up
        in the PSD.
        """
        n, segment_length = 100, 64
        # step = 32 -> stride starts at [0, 32]; samples 96..99 lie beyond
        # start 32 + 64 = 96 and were previously never windowed.
        values = np.zeros(n)
        values[97:] = 50.0
        spectrum = welch_psd(TimeSeries(values, 1.0), segment_length=segment_length,
                             detrend=False, window="rectangular")
        assert spectrum.total_energy(include_dc=True) > 1.0

    def test_end_anchored_segment_covers_all_data(self):
        """Every sample participates: a constant trace stays flat (pure DC)
        and the number of averaged segments includes the end-anchored one."""
        n, segment_length = 100, 64
        flat = welch_psd(TimeSeries(np.ones(n), 1.0), segment_length=segment_length,
                         detrend=False, window="rectangular")
        assert flat.total_energy(include_dc=False) == pytest.approx(0.0, abs=1e-12)
        assert flat.power[0] == pytest.approx(1.0)

    def test_exact_stride_has_no_extra_segment(self, rng):
        """When the stride lands exactly on the end, results are unchanged
        from the classic Welch segmentation."""
        values = rng.normal(size=96)
        series = TimeSeries(values, 1.0)
        spectrum = welch_psd(series, segment_length=64, overlap=0.5)  # starts 0, 32: covers 96
        manual = np.zeros(33)
        from repro.core.psd import window_coefficients
        taper = window_coefficients("hann", 64)
        for start in (0, 32):
            chunk = values[start:start + 64]
            chunk = chunk - np.mean(chunk)
            power = np.abs(np.fft.rfft(chunk * taper)) ** 2 / (64 * np.sum(taper ** 2))
            power[1:-1] *= 2.0
            manual += power
        np.testing.assert_allclose(spectrum.power, manual / 2, atol=1e-12)

    def test_variance_lower_than_periodogram(self, rng):
        from repro.signals.noise import white_noise
        series = white_noise(60.0, 20.0, std=1.0, rng=rng)
        raw = periodogram(series).without_dc()
        averaged = welch_psd(series, segment_length=128).without_dc()
        # For white noise the PSD should be flat; Welch averaging reduces
        # the bin-to-bin scatter relative to the mean level.
        raw_cv = np.std(raw.power) / np.mean(raw.power)
        averaged_cv = np.std(averaged.power) / np.mean(averaged.power)
        assert averaged_cv < raw_cv


class TestDegenerateTaperedWindow:
    """Regression: a length-2 tapered window (hanning(2) == [0, 0]) used to
    produce a NaN spectrum with a RuntimeWarning; it must now fail clearly."""

    def test_periodogram_length_two_hann_raises(self):
        with pytest.raises(ValueError, match="window"):
            periodogram(TimeSeries([1.0, 2.0], 1.0), window="hann")

    def test_welch_length_two_hann_raises(self):
        # n=2 resolves the default segment length to 2, and Welch's default
        # window is hann -- previously a silent all-NaN spectrum.
        with pytest.raises(ValueError, match="window"):
            welch_psd(TimeSeries([1.0, 2.0], 1.0))

    def test_welch_explicit_segment_length_two_raises(self):
        series = sine(1.0, duration=4.0, sampling_rate=16.0)
        with pytest.raises(ValueError, match="window"):
            welch_psd(series, segment_length=2, window="hann")

    def test_batch_periodogram_length_two_hann_raises(self):
        from repro.core.psd import batch_periodogram
        with pytest.raises(ValueError, match="window"):
            batch_periodogram(np.ones((3, 2)), 1.0, window="hann")

    def test_rectangular_length_two_still_works(self):
        spectrum = periodogram(TimeSeries([1.0, 2.0], 1.0), window="rectangular")
        assert np.all(np.isfinite(spectrum.power))

    def test_longer_tapered_windows_unaffected(self):
        series = sine(1.0, duration=4.0, sampling_rate=16.0)
        spectrum = welch_psd(series, segment_length=8, window="hann")
        assert np.all(np.isfinite(spectrum.power))


class TestPowerSpectrumDispatch:
    def test_dispatch(self, sine_1hz):
        assert len(power_spectrum(sine_1hz, method="periodogram")) > 0
        assert len(power_spectrum(sine_1hz, method="welch")) > 0

    def test_unknown_method(self, sine_1hz):
        with pytest.raises(ValueError):
            power_spectrum(sine_1hz, method="magic")  # type: ignore[arg-type]
