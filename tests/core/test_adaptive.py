"""Unit tests for the adaptive sampling controller (Section 4.2)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.adaptive import (AdaptiveSamplingController, ControllerConfig, ControllerMode,
                                 adaptive_sample)
from repro.signals.generators import multi_tone
from repro.signals.noise import add_white_noise
from repro.signals.timeseries import TimeSeries


def quiet_then_busy(busy_frequency=1.0 / 120.0, rate=0.2, rng=None) -> TimeSeries:
    """12 h trace: 6 quiet hours then 6 hours with a fast component."""
    quiet = multi_tone([1.0 / 7200.0], duration=6 * 3600.0, sampling_rate=rate,
                       amplitudes=[3.0], offset=10.0)
    busy = multi_tone([1.0 / 7200.0, busy_frequency], duration=6 * 3600.0, sampling_rate=rate,
                      amplitudes=[3.0, 6.0], offset=10.0)
    trace = quiet.concatenate(busy)
    if rng is not None:
        trace = add_white_noise(trace, 0.02, rng=rng)
    return trace


class TestControllerConfig:
    def test_defaults_are_valid(self):
        ControllerConfig()

    @pytest.mark.parametrize("kwargs", [
        {"initial_rate": 0.0},
        {"min_rate": 0.0},
        {"max_rate": 1e-9, "min_rate": 1e-6},
        {"probe_multiplier": 1.0},
        {"decrease_factor": 1.5},
        {"headroom": 0.5},
        {"memory_decay": 1.5},
        {"aliasing_check_interval": 0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ControllerConfig(**kwargs)


class TestControllerBehaviour:
    def test_starts_in_probe_mode(self):
        controller = AdaptiveSamplingController()
        assert controller.mode is ControllerMode.PROBE
        assert controller.current_rate == controller.config.initial_rate

    def test_reset_restores_initial_state(self):
        controller = AdaptiveSamplingController()
        controller.current_rate = 123.0
        controller.mode = ControllerMode.STEADY
        controller.reset()
        assert controller.mode is ControllerMode.PROBE
        assert controller.current_rate == controller.config.initial_rate

    def test_minimum_viable_rate(self):
        controller = AdaptiveSamplingController()
        floor = controller.minimum_viable_rate(3600.0)
        assert floor * 3600.0 >= controller.estimator.min_samples

    def test_minimum_viable_rate_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AdaptiveSamplingController().minimum_viable_rate(0.0)

    def test_run_settles_near_nyquist_on_stationary_signal(self, rng):
        # Signal with a 1/600 Hz component: true Nyquist rate ~1/300 Hz.
        reference = add_white_noise(
            multi_tone([1.0 / 600.0], duration=12 * 3600.0, sampling_rate=0.2,
                       amplitudes=[5.0], offset=20.0), 0.02, rng=rng)
        config = ControllerConfig(initial_rate=1.0 / 3600.0, max_rate=0.2)
        run = AdaptiveSamplingController(config).run(reference, window_duration=3600.0)
        final = run.decisions[-1]
        assert final.mode is ControllerMode.STEADY
        # Settled rate should be within a small factor of the true Nyquist rate.
        true_nyquist = 2.0 / 600.0
        assert true_nyquist * 0.8 <= final.sampling_rate <= true_nyquist * 6.0

    def test_ramps_up_when_signal_speeds_up(self, rng):
        reference = quiet_then_busy(rng=rng)
        config = ControllerConfig(initial_rate=1.0 / 900.0, max_rate=0.2,
                                  aliasing_check_interval=1)
        run = AdaptiveSamplingController(config).run(reference, window_duration=3600.0)
        quiet_rates = [d.sampling_rate for d in run.decisions if d.window_end <= 6 * 3600.0]
        busy_rates = [d.sampling_rate for d in run.decisions if d.window_start >= 7 * 3600.0]
        assert max(busy_rates) > max(quiet_rates)

    def test_collects_fewer_samples_than_reference(self, rng):
        reference = quiet_then_busy(rng=rng)
        run = adaptive_sample(reference, window_duration=3600.0,
                              config=ControllerConfig(initial_rate=1.0 / 900.0, max_rate=0.2))
        assert 0 < run.total_samples_collected < len(reference)
        assert run.cost_reduction > 1.0

    def test_decisions_cover_all_windows(self, rng):
        reference = quiet_then_busy(rng=rng)
        run = adaptive_sample(reference, window_duration=3600.0)
        assert len(run.decisions) == 12
        assert run.decisions[0].window_start == pytest.approx(reference.start_time)

    def test_rate_respects_bounds(self, rng):
        reference = quiet_then_busy(rng=rng)
        config = ControllerConfig(initial_rate=0.01, min_rate=1.0 / 7200.0, max_rate=0.05)
        run = AdaptiveSamplingController(config).run(reference, window_duration=3600.0)
        for decision in run.decisions:
            assert decision.sampling_rate <= 0.05 + 1e-12
            assert decision.next_rate <= 0.05 + 1e-12

    def test_inferred_rates_series_matches_decisions(self, rng):
        reference = quiet_then_busy(rng=rng)
        run = adaptive_sample(reference, window_duration=3600.0)
        inferred = run.inferred_rates()
        assert len(inferred) == len(run.decisions)
        assert inferred[0][0] == run.decisions[0].window_start

    def test_collected_series_is_nonempty(self, rng):
        reference = quiet_then_busy(rng=rng)
        run = adaptive_sample(reference, window_duration=3600.0)
        collected = run.collected_series()
        assert len(collected) > 0
        assert collected.start_time == reference.start_time

    def test_memory_speeds_up_second_ramp(self, rng):
        # Two busy episodes: with memory the controller should reach a high
        # rate at least as fast the second time.
        rate = 0.2
        quiet = multi_tone([1.0 / 7200.0], duration=4 * 3600.0, sampling_rate=rate,
                           amplitudes=[3.0], offset=10.0)
        busy = multi_tone([1.0 / 7200.0, 1.0 / 120.0], duration=2 * 3600.0, sampling_rate=rate,
                          amplitudes=[3.0, 6.0], offset=10.0)
        reference = quiet.concatenate(busy).concatenate(quiet).concatenate(busy)
        config = ControllerConfig(initial_rate=1.0 / 900.0, max_rate=rate,
                                  aliasing_check_interval=1, memory_decay=1.0)
        run = AdaptiveSamplingController(config).run(reference, window_duration=1800.0)
        hours = np.array([d.window_start for d in run.decisions]) / 3600.0
        rates = np.array([d.sampling_rate for d in run.decisions])
        first_busy_peak = rates[(hours >= 4.0) & (hours < 6.0)].max()
        second_busy_peak = rates[(hours >= 10.0) & (hours < 12.0)].max()
        assert second_busy_peak >= first_busy_peak * 0.5

    def test_window_shorter_than_two_samples_rejected(self):
        controller = AdaptiveSamplingController()
        with pytest.raises(ValueError):
            controller.process_window(TimeSeries([1.0], 1.0))

    def test_run_rejects_bad_window(self, sine_1hz):
        with pytest.raises(ValueError):
            AdaptiveSamplingController().run(sine_1hz, window_duration=0.0)

    def test_steady_mode_checks_are_periodic(self, rng):
        reference = add_white_noise(
            multi_tone([1.0 / 600.0], duration=16 * 3600.0, sampling_rate=0.2,
                       amplitudes=[5.0], offset=20.0), 0.02, rng=rng)
        config = ControllerConfig(initial_rate=1.0 / 600.0, max_rate=0.2,
                                  aliasing_check_interval=4)
        controller = AdaptiveSamplingController(config)
        run = controller.run(reference, window_duration=3600.0)
        steady = [d for d in run.decisions if d.mode is ControllerMode.STEADY]
        # Most steady windows should be cheap (single stream): their sample
        # count should be noticeably below the dual-stream windows'.
        assert len(steady) > 4
