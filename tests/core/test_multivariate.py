"""Unit tests for the multivariate-signal extension (Section 6)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.multivariate import (correlation_matrix, correlation_preservation,
                                     estimate_joint_nyquist, joint_sampling_rate)
from repro.signals.generators import constant, sine
from repro.signals.timeseries import TimeSeries


def bundle():
    """Two co-monitored signals with different bandwidths plus a correlated pair."""
    slow = sine(0.5, duration=60.0, sampling_rate=50.0, amplitude=4.0, offset=10.0)
    fast = sine(4.0, duration=60.0, sampling_rate=50.0, amplitude=2.0, offset=3.0)
    return {"slow": slow, "fast": fast}


class TestJointEstimate:
    def test_per_component_rates(self):
        estimate = estimate_joint_nyquist(bundle())
        rates = estimate.per_component_rates
        assert rates["slow"] == pytest.approx(1.0, rel=0.1)
        assert rates["fast"] == pytest.approx(8.0, rel=0.1)

    def test_max_rate_is_conservative_joint_rate(self):
        estimate = estimate_joint_nyquist(bundle())
        assert estimate.max_nyquist_rate == pytest.approx(8.0, rel=0.1)

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            estimate_joint_nyquist({})

    def test_savings_vs_uniform(self):
        estimate = estimate_joint_nyquist(bundle())
        savings = estimate.savings_vs_uniform(current_rate=50.0)
        assert savings["slow"] > savings["fast"] > 1.0

    def test_joint_sampling_rate_policies(self):
        signals = bundle()
        maximum = joint_sampling_rate(signals, policy="max")
        independent = joint_sampling_rate(signals, policy="independent")
        assert maximum == pytest.approx(8.0, rel=0.1)
        assert independent < maximum

    def test_joint_sampling_rate_unknown_policy(self):
        with pytest.raises(ValueError):
            joint_sampling_rate(bundle(), policy="median")


class TestCorrelation:
    def test_correlation_matrix_diagonal_is_one(self):
        matrix = correlation_matrix(list(bundle().values()))
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_identical_signals_fully_correlated(self):
        series = sine(1.0, 10.0, 50.0)
        matrix = correlation_matrix([series, series])
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_constant_signal_has_zero_correlation(self):
        matrix = correlation_matrix([sine(1.0, 10.0, 50.0), constant(5.0, 10.0, 50.0)])
        assert matrix[0, 1] == pytest.approx(0.0)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            correlation_matrix([TimeSeries([1.0], 1.0)])

    def test_correlation_preserved_after_nyquist_sampling(self):
        # Two correlated band-limited signals: sampling each at its own
        # Nyquist rate keeps the correlation structure (the §6 claim).
        base = sine(0.5, duration=120.0, sampling_rate=50.0, amplitude=4.0)
        other = sine(0.5, duration=120.0, sampling_rate=50.0, amplitude=2.0,
                     phase=0.3, offset=1.0)
        report = correlation_preservation({"a": base, "b": other}, headroom=1.3)
        assert report["max_correlation_deviation"] < 0.2
        assert report["components"] == 2.0

    def test_correlation_preservation_needs_two_signals(self):
        with pytest.raises(ValueError):
            correlation_preservation({"a": sine(1.0, 10.0, 50.0)})
