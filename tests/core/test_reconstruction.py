"""Unit tests for low-pass reconstruction and the Nyquist round trip (Figure 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nyquist import NyquistEstimator
from repro.core.quantization import UniformQuantizer
from repro.core.reconstruction import (nyquist_round_trip, reconstruct, upsample_to_length)
from repro.core.resampling import resample_to_rate
from repro.signals.generators import constant, multi_tone, sine


class TestUpsample:
    def test_band_limited_upsample_is_exact(self):
        sparse = sine(2.0, duration=2.0, sampling_rate=20.0)
        dense = sine(2.0, duration=2.0, sampling_rate=200.0)
        recovered = upsample_to_length(sparse, len(dense))
        assert np.max(np.abs(recovered.values - dense.values)) < 0.01

    def test_quantizer_applied(self):
        sparse = sine(1.0, duration=2.0, sampling_rate=20.0, amplitude=3.0)
        quantizer = UniformQuantizer(step=0.5)
        recovered = upsample_to_length(sparse, 100, quantizer=quantizer)
        steps = recovered.values / 0.5
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-9)

    def test_cutoff_removes_high_content(self):
        sparse = multi_tone([1.0, 8.0], duration=2.0, sampling_rate=40.0)
        recovered = upsample_to_length(sparse, 400, cutoff_hz=2.0)
        reference = sine(1.0, duration=2.0, sampling_rate=200.0)
        assert np.max(np.abs(recovered.values - reference.values)) < 0.05


class TestReconstruct:
    def test_round_trip_at_original_rate(self, two_tone):
        downsampled = resample_to_rate(two_tone, 1000.0, anti_alias=True)
        reconstructed = reconstruct(downsampled, two_tone.sampling_rate)
        assert reconstructed.sampling_rate == pytest.approx(two_tone.sampling_rate)
        assert abs(len(reconstructed) - len(two_tone)) <= 2

    def test_rejects_bad_rate(self, sine_1hz):
        with pytest.raises(ValueError):
            reconstruct(sine_1hz, 0.0)


class TestNyquistRoundTrip:
    def test_figure6_style_round_trip_on_tone(self):
        # A band-limited signal over-sampled 25x: down-sampling to the
        # estimated Nyquist rate (with a little headroom -- exactly 2x the
        # tone frequency is the theorem's degenerate boundary) and
        # reconstructing loses (essentially) nothing: the Figure 6 claim.
        series = sine(0.001, duration=10000.0, sampling_rate=0.05, amplitude=5.0, offset=50.0)
        result = nyquist_round_trip(series, headroom=1.25)
        assert result.estimate.reliable
        assert result.reduction_factor > 5
        assert result.error.nrmse < 0.05

    def test_sampling_exactly_at_nyquist_is_degenerate_for_pure_tone(self):
        # Documenting the boundary case: at exactly twice the tone
        # frequency the samples can miss the tone's amplitude entirely.
        series = sine(0.001, duration=10000.0, sampling_rate=0.05, amplitude=5.0, offset=50.0)
        result = nyquist_round_trip(series, headroom=1.0)
        assert result.error.nrmse > 0.05

    def test_quantization_aware_recovery_is_tighter(self):
        quantizer = UniformQuantizer(step=0.5)
        series = quantizer.apply_series(
            sine(0.001, duration=10000.0, sampling_rate=0.05, amplitude=5.0, offset=50.0))
        plain = nyquist_round_trip(series)
        aware = nyquist_round_trip(series, quantizer=quantizer)
        assert aware.error.l2 <= plain.error.l2 + 1e-9

    def test_headroom_keeps_more_samples(self, slow_metric_trace):
        tight = nyquist_round_trip(slow_metric_trace, headroom=1.0)
        generous = nyquist_round_trip(slow_metric_trace, headroom=4.0)
        assert len(generous.downsampled) >= len(tight.downsampled)

    def test_headroom_below_one_rejected(self, slow_metric_trace):
        with pytest.raises(ValueError):
            nyquist_round_trip(slow_metric_trace, headroom=0.5)

    def test_unreliable_estimate_keeps_trace(self, rng):
        from repro.signals.noise import white_noise
        noise_trace = white_noise(100.0, 10.0, rng=rng)
        estimator = NyquistEstimator(aliased_band_fraction=0.9)
        result = nyquist_round_trip(noise_trace, estimator=estimator)
        assert not result.estimate.reliable
        assert len(result.downsampled) == len(noise_trace)
        assert result.error.l2 == 0.0

    def test_summary_keys(self, slow_metric_trace):
        summary = nyquist_round_trip(slow_metric_trace).summary()
        for key in ("original_rate_hz", "nyquist_rate_hz", "downsampled_rate_hz",
                    "reduction_factor", "l2", "nrmse"):
            assert key in summary

    def test_constant_trace_round_trip(self):
        series = constant(7.0, duration=3600.0, sampling_rate=1.0)
        result = nyquist_round_trip(series)
        assert result.error.max_abs < 1e-9
        assert result.reduction_factor > 100
