"""Unit tests for re-sampling: regularisation, down-sampling, Fourier interpolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.resampling import (downsample, fourier_resample, linear_resample,
                                   nearest_neighbor_resample, regularize, resample_to_rate)
from repro.signals.generators import multi_tone, sine
from repro.signals.timeseries import IrregularTimeSeries, TimeSeries


class TestNearestNeighbor:
    def test_recovers_regular_grid(self):
        series = sine(1.0, duration=10.0, sampling_rate=10.0)
        irregular = series.to_irregular()
        recovered = nearest_neighbor_resample(irregular, 0.1)
        assert recovered.interval == pytest.approx(0.1)
        np.testing.assert_allclose(recovered.values[:len(series)], series.values, atol=1e-9)

    def test_fills_gaps_with_nearest_value(self):
        irregular = IrregularTimeSeries([0.0, 1.0, 4.0], [10.0, 20.0, 50.0])
        regular = nearest_neighbor_resample(irregular, 1.0)
        np.testing.assert_allclose(regular.values, [10.0, 20.0, 20.0, 50.0, 50.0])

    def test_dedupes_before_resampling(self):
        irregular = IrregularTimeSeries([0.0, 0.0, 1.0], [1.0, 99.0, 2.0])
        regular = nearest_neighbor_resample(irregular, 1.0)
        np.testing.assert_allclose(regular.values, [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nearest_neighbor_resample(IrregularTimeSeries([], []), 1.0)

    def test_rejects_bad_interval(self):
        irregular = IrregularTimeSeries([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            nearest_neighbor_resample(irregular, 0.0)

    def test_explicit_time_bounds(self):
        irregular = IrregularTimeSeries([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        regular = nearest_neighbor_resample(irregular, 1.0, start_time=1.0, end_time=2.0)
        np.testing.assert_allclose(regular.values, [2.0, 3.0])
        assert regular.start_time == 1.0


class TestRegularize:
    def test_uses_median_interval(self, rng):
        series = sine(0.5, duration=20.0, sampling_rate=5.0)
        timestamps = series.times() + rng.normal(scale=0.01, size=len(series))
        irregular = IrregularTimeSeries(np.sort(timestamps), series.values)
        regular = regularize(irregular)
        assert regular.interval == pytest.approx(0.2, rel=0.1)

    def test_explicit_interval(self):
        irregular = IrregularTimeSeries([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0])
        regular = regularize(irregular, interval=0.5)
        assert regular.interval == 0.5
        assert len(regular) == 7


class TestDownsample:
    def test_factor_one_is_identity(self, sine_1hz):
        assert downsample(sine_1hz, 1) is sine_1hz

    def test_reduces_length_and_rate(self, sine_1hz):
        down = downsample(sine_1hz, 5)
        assert len(down) == len(sine_1hz) // 5
        assert down.sampling_rate == pytest.approx(sine_1hz.sampling_rate / 5)

    def test_anti_alias_protects_against_folding(self):
        # 1 Hz + 22 Hz tones sampled at 100 Hz, downsampled 10x -> new band
        # 5 Hz; the 22 Hz tone folds to 2 Hz unless it is filtered out first.
        series = multi_tone([1.0, 22.0], duration=4.0, sampling_rate=100.0)
        clean = downsample(series, 10, anti_alias=True)
        aliased = downsample(series, 10, anti_alias=False)
        reference = sine(1.0, duration=4.0, sampling_rate=10.0)
        clean_error = np.max(np.abs(clean.values - reference.values[:len(clean)]))
        aliased_error = np.max(np.abs(aliased.values - reference.values[:len(aliased)]))
        assert clean_error < 0.1
        assert aliased_error > 0.5

    def test_rejects_bad_factor(self, sine_1hz):
        with pytest.raises(ValueError):
            downsample(sine_1hz, 0)


class TestResampleToRate:
    def test_target_above_current_rate_is_identity(self, sine_1hz):
        assert resample_to_rate(sine_1hz, 1000.0) is sine_1hz

    def test_never_exceeds_target(self, sine_1hz):
        resampled = resample_to_rate(sine_1hz, 7.0)
        assert resampled.sampling_rate <= 7.0 + 1e-9

    def test_rejects_bad_rate(self, sine_1hz):
        with pytest.raises(ValueError):
            resample_to_rate(sine_1hz, 0.0)


class TestFourierResample:
    def test_upsample_recovers_band_limited_signal(self):
        dense = sine(3.0, duration=2.0, sampling_rate=200.0)
        sparse = sine(3.0, duration=2.0, sampling_rate=20.0)
        recovered = fourier_resample(sparse, len(dense))
        assert np.max(np.abs(recovered.values - dense.values)) < 0.02

    def test_same_length_is_identity(self, sine_1hz):
        assert fourier_resample(sine_1hz, len(sine_1hz)) is sine_1hz

    def test_downsample_then_upsample_round_trip(self, two_tone):
        reduced = fourier_resample(two_tone, 1000)
        restored = fourier_resample(reduced, len(two_tone))
        assert np.max(np.abs(restored.values - two_tone.values)) < 1e-6

    def test_preserves_duration(self, sine_1hz):
        resampled = fourier_resample(sine_1hz, 123)
        assert resampled.duration == pytest.approx(sine_1hz.duration, rel=1e-9)

    def test_rejects_bad_length(self, sine_1hz):
        with pytest.raises(ValueError):
            fourier_resample(sine_1hz, 0)

    def test_preserves_mean(self):
        series = sine(2.0, duration=2.0, sampling_rate=100.0, offset=10.0)
        up = fourier_resample(series, 500)
        assert up.mean() == pytest.approx(10.0, abs=0.01)


class TestLinearResample:
    def test_constant_signal(self):
        series = TimeSeries(np.full(10, 4.0), 1.0)
        resampled = linear_resample(series, 3.0)
        np.testing.assert_allclose(resampled.values, 4.0)

    def test_interpolates_between_samples(self):
        series = TimeSeries([0.0, 10.0], 1.0)
        resampled = linear_resample(series, 4.0)
        np.testing.assert_allclose(resampled.values[:4], [0.0, 2.5, 5.0, 7.5])

    def test_rejects_bad_rate(self, sine_1hz):
        with pytest.raises(ValueError):
            linear_resample(sine_1hz, -1.0)
