"""Unit tests for quantisation and quantisation-noise accounting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.quantization import (UniformQuantizer, quantization_noise_std, quantize,
                                     sqnr_db)
from repro.signals.generators import constant, sine
from repro.signals.timeseries import TimeSeries


class TestUniformQuantizer:
    def test_rounds_to_step(self):
        quantizer = UniformQuantizer(step=0.5)
        np.testing.assert_allclose(quantizer.apply(np.array([0.1, 0.3, 0.74, 1.1])),
                                   [0.0, 0.5, 0.5, 1.0])

    def test_clipping(self):
        quantizer = UniformQuantizer(step=1.0, minimum=0.0, maximum=5.0)
        np.testing.assert_allclose(quantizer.apply(np.array([-3.0, 7.2])), [0.0, 5.0])

    def test_apply_series_preserves_timing(self, sine_1hz):
        quantizer = UniformQuantizer(step=0.25)
        quantized = quantizer.apply_series(sine_1hz)
        assert quantized.interval == sine_1hz.interval
        assert np.max(np.abs(quantized.values - sine_1hz.values)) <= 0.125 + 1e-12

    def test_noise_std(self):
        assert UniformQuantizer(step=1.0).noise_std() == pytest.approx(1.0 / math.sqrt(12.0))

    def test_levels(self):
        assert UniformQuantizer(step=1.0, minimum=0.0, maximum=10.0).levels() == 11
        assert UniformQuantizer(step=1.0).levels() is None

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            UniformQuantizer(step=0.0)
        with pytest.raises(ValueError):
            UniformQuantizer(step=-1.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformQuantizer(step=1.0, minimum=5.0, maximum=1.0)

    def test_quantization_is_idempotent(self, sine_1hz):
        quantizer = UniformQuantizer(step=0.5)
        once = quantizer.apply_series(sine_1hz)
        twice = quantizer.apply_series(once)
        np.testing.assert_allclose(once.values, twice.values)


class TestHelpers:
    def test_quantize_function(self, sine_1hz):
        quantized = quantize(sine_1hz, 0.5)
        assert np.all(np.abs(quantized.values / 0.5 - np.round(quantized.values / 0.5)) < 1e-9)

    def test_quantization_noise_std_rejects_bad_step(self):
        with pytest.raises(ValueError):
            quantization_noise_std(0.0)

    def test_sqnr_large_for_fine_quantization(self):
        series = sine(1.0, 10.0, 50.0, amplitude=10.0)
        fine = sqnr_db(series, 0.01)
        coarse = sqnr_db(series, 5.0)
        assert fine > coarse
        assert fine > 40.0

    def test_sqnr_constant_signal_is_minus_inf(self):
        assert sqnr_db(constant(5.0, 10.0, 10.0), 0.1) == -math.inf

    def test_sqnr_empty_series_rejected(self):
        with pytest.raises(ValueError):
            sqnr_db(TimeSeries(np.empty(0), 1.0), 0.1)

    def test_measured_quantization_error_matches_model(self, rng):
        # Empirical RMS error of quantising noise-like data approaches step/sqrt(12).
        values = rng.uniform(0.0, 100.0, size=20000)
        series = TimeSeries(values, 1.0)
        quantized = quantize(series, 1.0)
        empirical = float(np.std(series.values - quantized.values))
        assert empirical == pytest.approx(quantization_noise_std(1.0), rel=0.05)
