"""Unit tests for moving-window Nyquist inference (Figure 7)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.nyquist import NyquistEstimator
from repro.core.windowed import (FIGURE7_STEP_SECONDS, FIGURE7_WINDOW_SECONDS,
                                 rate_stability, windowed_nyquist_rates)
from repro.signals.generators import multi_tone, sine


class TestWindowedEstimates:
    def test_figure7_defaults(self):
        assert FIGURE7_WINDOW_SECONDS == 6 * 3600.0
        assert FIGURE7_STEP_SECONDS == 5 * 60.0

    def test_stationary_signal_gives_stable_rates(self):
        series = sine(1.0 / 1800.0, duration=86400.0, sampling_rate=1.0 / 60.0, amplitude=5.0)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=3600.0)
        rates = [entry.nyquist_rate for entry in estimates]
        assert len(estimates) == 19
        assert all(not math.isnan(rate) for rate in rates)
        assert max(rates) / min(rates) < 2.0

    def test_changing_signal_gives_changing_rates(self):
        rate = 1.0 / 30.0
        slow = sine(1.0 / 7200.0, duration=43200.0, sampling_rate=rate, amplitude=5.0)
        fast = multi_tone([1.0 / 7200.0, 1.0 / 600.0], duration=43200.0, sampling_rate=rate,
                          amplitudes=[5.0, 5.0])
        series = slow.concatenate(fast)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=3600.0,
                                           estimator=NyquistEstimator(detrend=True, window="hann"))
        first_half = [e.nyquist_rate for e in estimates if e.window_end <= 43200.0]
        second_half = [e.nyquist_rate for e in estimates if e.window_start >= 43200.0]
        assert np.nanmedian(second_half) > np.nanmedian(first_half) * 3

    def test_windows_carry_time_bounds(self):
        series = sine(1.0 / 1800.0, duration=43200.0, sampling_rate=1.0 / 60.0)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=2 * 3600.0)
        assert estimates[0].window_start == pytest.approx(0.0)
        assert estimates[0].window_end == pytest.approx(6 * 3600.0)
        assert estimates[1].window_start == pytest.approx(2 * 3600.0)

    def test_short_windows_are_skipped(self):
        series = sine(1.0, duration=10.0, sampling_rate=2.0)
        estimates = windowed_nyquist_rates(series, window_seconds=1.0, step_seconds=1.0)
        assert estimates == []


class TestBackendEquivalence:
    """The vectorised (sliding_window_view + estimate_batch) sweep must
    reproduce the scalar per-window reference loop, window for window."""

    @staticmethod
    def assert_series_equivalent(scalar, batched):
        assert len(scalar) == len(batched)
        for a, b in zip(scalar, batched):
            assert a.window_start == b.window_start
            assert a.window_end == b.window_end
            assert a.estimate.reliable == b.estimate.reliable
            assert a.estimate.reason == b.estimate.reason
            assert np.isclose(a.estimate.nyquist_rate, b.estimate.nyquist_rate)
            assert np.isclose(a.estimate.captured_fraction, b.estimate.captured_fraction)

    @pytest.mark.parametrize("window_seconds,step_seconds", [
        (6 * 3600.0, 3600.0),     # the paper's shape: exact multiples
        (6 * 3600.0, 300.0),      # Figure 7 defaults on a day-long trace
        (5000.0, 1700.0),         # window/step not multiples of the interval
        (4321.0, 987.0),          # fully ragged boundaries
    ])
    def test_equivalence_on_tone(self, window_seconds, step_seconds):
        series = sine(1.0 / 1800.0, duration=86400.0, sampling_rate=1.0 / 60.0,
                      amplitude=5.0)
        scalar = windowed_nyquist_rates(series, window_seconds, step_seconds,
                                        backend="scalar")
        batched = windowed_nyquist_rates(series, window_seconds, step_seconds,
                                         backend="batched")
        assert scalar  # the sweep is non-trivial
        self.assert_series_equivalent(scalar, batched)

    def test_equivalence_with_ragged_window_lengths(self, rng):
        """Non-integer window/interval ratios make neighbouring windows
        differ by one sample; every length group must still be analysed."""
        series = sine(0.003, duration=3500.0, sampling_rate=1.0 / 7.0, amplitude=3.0)
        series = series.with_values(series.values + 0.01 * rng.normal(size=len(series)))
        scalar = windowed_nyquist_rates(series, window_seconds=300.0, step_seconds=93.0,
                                        backend="scalar")
        batched = windowed_nyquist_rates(series, window_seconds=300.0, step_seconds=93.0,
                                         backend="batched")
        lengths = {round((e.window_end - e.window_start) / 7.0) for e in batched}
        assert len(lengths) > 1  # the ragged case is actually exercised
        self.assert_series_equivalent(scalar, batched)

    def test_equivalence_with_tapered_detrended_estimator(self, rng):
        estimator = NyquistEstimator(detrend=True, window="hann")
        rate = 1.0 / 30.0
        slow = sine(1.0 / 7200.0, duration=43200.0, sampling_rate=rate, amplitude=5.0)
        fast = multi_tone([1.0 / 7200.0, 1.0 / 600.0], duration=43200.0,
                          sampling_rate=rate, amplitudes=[5.0, 5.0])
        series = slow.concatenate(fast)
        scalar = windowed_nyquist_rates(series, 6 * 3600.0, 1800.0,
                                        estimator=estimator, backend="scalar")
        batched = windowed_nyquist_rates(series, 6 * 3600.0, 1800.0,
                                         estimator=estimator, backend="batched")
        self.assert_series_equivalent(scalar, batched)

    def test_empty_sweep(self):
        series = sine(1.0, duration=10.0, sampling_rate=2.0)
        assert windowed_nyquist_rates(series, 1.0, 1.0, backend="batched") == []

    def test_rejects_unknown_backend(self):
        series = sine(1.0, duration=10.0, sampling_rate=2.0)
        with pytest.raises(ValueError, match="backend"):
            windowed_nyquist_rates(series, 5.0, 1.0, backend="gpu")  # type: ignore[arg-type]

    def test_rejects_bad_window(self):
        series = sine(1.0, duration=10.0, sampling_rate=2.0)
        for backend in ("scalar", "batched"):
            with pytest.raises(ValueError):
                windowed_nyquist_rates(series, 0.0, 1.0, backend=backend)


class TestRateStability:
    def test_empty_input(self):
        stats = rate_stability([])
        assert stats["count"] == 0.0
        assert math.isnan(stats["min"])

    def test_summary_values(self):
        series = sine(1.0 / 1800.0, duration=86400.0, sampling_rate=1.0 / 60.0, amplitude=5.0)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=3600.0)
        stats = rate_stability(estimates)
        assert stats["count"] == len(estimates)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["dynamic_range"] >= 1.0
