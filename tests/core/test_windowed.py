"""Unit tests for moving-window Nyquist inference (Figure 7)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.nyquist import NyquistEstimator
from repro.core.windowed import (FIGURE7_STEP_SECONDS, FIGURE7_WINDOW_SECONDS,
                                 rate_stability, windowed_nyquist_rates)
from repro.signals.generators import multi_tone, sine


class TestWindowedEstimates:
    def test_figure7_defaults(self):
        assert FIGURE7_WINDOW_SECONDS == 6 * 3600.0
        assert FIGURE7_STEP_SECONDS == 5 * 60.0

    def test_stationary_signal_gives_stable_rates(self):
        series = sine(1.0 / 1800.0, duration=86400.0, sampling_rate=1.0 / 60.0, amplitude=5.0)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=3600.0)
        rates = [entry.nyquist_rate for entry in estimates]
        assert len(estimates) == 19
        assert all(not math.isnan(rate) for rate in rates)
        assert max(rates) / min(rates) < 2.0

    def test_changing_signal_gives_changing_rates(self):
        rate = 1.0 / 30.0
        slow = sine(1.0 / 7200.0, duration=43200.0, sampling_rate=rate, amplitude=5.0)
        fast = multi_tone([1.0 / 7200.0, 1.0 / 600.0], duration=43200.0, sampling_rate=rate,
                          amplitudes=[5.0, 5.0])
        series = slow.concatenate(fast)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=3600.0,
                                           estimator=NyquistEstimator(detrend=True, window="hann"))
        first_half = [e.nyquist_rate for e in estimates if e.window_end <= 43200.0]
        second_half = [e.nyquist_rate for e in estimates if e.window_start >= 43200.0]
        assert np.nanmedian(second_half) > np.nanmedian(first_half) * 3

    def test_windows_carry_time_bounds(self):
        series = sine(1.0 / 1800.0, duration=43200.0, sampling_rate=1.0 / 60.0)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=2 * 3600.0)
        assert estimates[0].window_start == pytest.approx(0.0)
        assert estimates[0].window_end == pytest.approx(6 * 3600.0)
        assert estimates[1].window_start == pytest.approx(2 * 3600.0)

    def test_short_windows_are_skipped(self):
        series = sine(1.0, duration=10.0, sampling_rate=2.0)
        estimates = windowed_nyquist_rates(series, window_seconds=1.0, step_seconds=1.0)
        assert estimates == []


class TestRateStability:
    def test_empty_input(self):
        stats = rate_stability([])
        assert stats["count"] == 0.0
        assert math.isnan(stats["min"])

    def test_summary_values(self):
        series = sine(1.0 / 1800.0, duration=86400.0, sampling_rate=1.0 / 60.0, amplitude=5.0)
        estimates = windowed_nyquist_rates(series, window_seconds=6 * 3600.0,
                                           step_seconds=3600.0)
        stats = rate_stability(estimates)
        assert stats["count"] == len(estimates)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["dynamic_range"] >= 1.0
