"""Equivalence tests for the batched spectral engine (repro.core.batch).

The batched engine is an optimisation, not a new estimator: for every
configuration and every trace shape, its estimates must match what the
scalar reference path (:meth:`NyquistEstimator.estimate`) produces row by
row.  These tests sweep windows, PSD methods, odd/even lengths, detrend,
DC handling, energy fractions and degenerate traces (constant, all-zero,
broadband) and assert rate equality plus identical reliability flags.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import batch_estimate
from repro.core.nyquist import NyquistEstimate, NyquistEstimator
from repro.core.psd import batch_periodogram, batch_welch_psd, periodogram, welch_psd
from repro.signals.spectrum import SpectrumBatch
from repro.signals.timeseries import TimeSeries


def make_matrix(n: int, rows: int = 8, seed: int = 0) -> np.ndarray:
    """Mixed bag of traces: random walks, a constant, white noise, zeros, a tone."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, n)).cumsum(axis=1)
    matrix[1] = 42.5                                        # constant trace
    matrix[2] = rng.normal(size=n)                          # broadband (aliased suspect)
    matrix[3] = 0.0                                         # all zeros
    matrix[4] = np.sin(2 * np.pi * 3.0 * np.arange(n) / n)  # clean slow tone
    return matrix


def assert_equivalent(scalar: NyquistEstimate, batched: NyquistEstimate) -> None:
    assert scalar.reliable == batched.reliable
    assert scalar.reason == batched.reason
    assert scalar.is_aliased_suspect == batched.is_aliased_suspect
    assert np.isclose(scalar.nyquist_rate, batched.nyquist_rate)
    assert np.isclose(scalar.current_rate, batched.current_rate)
    assert np.isclose(scalar.captured_fraction, batched.captured_fraction)
    assert np.isclose(scalar.total_energy, batched.total_energy)
    if scalar.reliable:
        assert np.isclose(scalar.reduction_ratio, batched.reduction_ratio)


class TestBatchedPsd:
    @pytest.mark.parametrize("n", [16, 17, 128, 129])
    @pytest.mark.parametrize("window", ["rectangular", "hann", "hamming", "blackman"])
    def test_batch_periodogram_matches_scalar_rows(self, n, window):
        matrix = make_matrix(n)
        batch = batch_periodogram(matrix, interval=2.0, window=window)
        assert isinstance(batch, SpectrumBatch)
        assert len(batch) == matrix.shape[0]
        for index in range(matrix.shape[0]):
            scalar = periodogram(TimeSeries(matrix[index], 2.0), window=window)
            np.testing.assert_allclose(batch.row(index).power, scalar.power, atol=1e-12)
            np.testing.assert_allclose(batch.frequencies, scalar.frequencies)

    @pytest.mark.parametrize("n", [32, 33, 300])
    @pytest.mark.parametrize("overlap", [0.0, 0.5, 0.75])
    def test_batch_welch_matches_scalar_rows(self, n, overlap):
        matrix = make_matrix(n)
        batch = batch_welch_psd(matrix, interval=1.0, segment_length=16, overlap=overlap)
        for index in range(matrix.shape[0]):
            scalar = welch_psd(TimeSeries(matrix[index], 1.0), segment_length=16,
                               overlap=overlap)
            np.testing.assert_allclose(batch.row(index).power, scalar.power, atol=1e-12)

    def test_batch_periodogram_rejects_bad_input(self):
        with pytest.raises(ValueError):
            batch_periodogram(np.zeros((2, 3, 4)), 1.0)
        with pytest.raises(ValueError):
            batch_periodogram(np.zeros((2, 8)), 0.0)
        with pytest.raises(ValueError):
            batch_periodogram(np.zeros((2, 1)), 1.0)


class TestBatchEstimateEquivalence:
    @pytest.mark.parametrize("n", [16, 17, 64, 65, 256, 257])
    @pytest.mark.parametrize("window", ["rectangular", "hann", "blackman"])
    def test_windows_and_lengths(self, n, window):
        estimator = NyquistEstimator(window=window)
        matrix = make_matrix(n, seed=n)
        batched = batch_estimate(matrix, 2.0, estimator=estimator)
        for index in range(matrix.shape[0]):
            scalar = estimator.estimate(TimeSeries(matrix[index], 2.0))
            assert_equivalent(scalar, batched[index])

    @pytest.mark.parametrize("psd_method", ["periodogram", "welch"])
    @pytest.mark.parametrize("detrend", [False, True])
    @pytest.mark.parametrize("include_dc", [False, True])
    def test_psd_method_detrend_and_dc(self, psd_method, detrend, include_dc):
        estimator = NyquistEstimator(psd_method=psd_method, detrend=detrend,
                                     include_dc=include_dc)
        matrix = make_matrix(96, seed=11)
        batched = batch_estimate(matrix, 30.0, estimator=estimator)
        for index in range(matrix.shape[0]):
            scalar = estimator.estimate(TimeSeries(matrix[index], 30.0))
            assert_equivalent(scalar, batched[index])

    @pytest.mark.parametrize("energy_fraction", [0.5, 0.9, 0.99, 1.0])
    def test_energy_fractions(self, energy_fraction):
        estimator = NyquistEstimator(energy_fraction=energy_fraction)
        matrix = make_matrix(120, seed=3)
        batched = batch_estimate(matrix, 1.0, estimator=estimator)
        for index in range(matrix.shape[0]):
            scalar = estimator.estimate(TimeSeries(matrix[index], 1.0))
            assert_equivalent(scalar, batched[index])

    def test_flat_tolerance(self):
        estimator = NyquistEstimator(flat_tolerance=0.01)
        rng = np.random.default_rng(9)
        matrix = 100.0 + 0.0001 * rng.normal(size=(6, 64))
        matrix[2] = 100.0
        matrix[4] = rng.normal(size=64) * 50.0
        batched = batch_estimate(matrix, 1.0, estimator=estimator)
        for index in range(matrix.shape[0]):
            scalar = estimator.estimate(TimeSeries(matrix[index], 1.0))
            assert_equivalent(scalar, batched[index])

    def test_aliased_band_fraction(self):
        estimator = NyquistEstimator(aliased_band_fraction=0.5)
        matrix = make_matrix(128, seed=21)
        batched = batch_estimate(matrix, 1.0, estimator=estimator)
        for index in range(matrix.shape[0]):
            scalar = estimator.estimate(TimeSeries(matrix[index], 1.0))
            assert_equivalent(scalar, batched[index])

    def test_constant_traces_are_reliable_with_lowest_rate(self):
        matrix = np.full((3, 64), 7.0)
        batched = batch_estimate(matrix, 10.0)
        for estimate in batched:
            assert estimate.reliable
            assert estimate.reason == "constant trace"
            assert estimate.nyquist_rate == pytest.approx(1.0 / (64 * 10.0))

    def test_short_traces_rejected_per_row(self):
        estimator = NyquistEstimator(min_samples=32)
        batched = batch_estimate(np.zeros((4, 16)), 1.0, estimator=estimator)
        assert all(not e.reliable and e.reason == "trace too short" for e in batched)

    def test_empty_batch(self):
        assert batch_estimate(np.empty((0, 64)), 1.0) == []

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            batch_estimate(np.zeros(16), 1.0)
        with pytest.raises(ValueError):
            batch_estimate(np.zeros((2, 16)), -1.0)

    def test_estimator_method_entry_point(self):
        """NyquistEstimator.estimate_batch is the public door to the engine."""
        estimator = NyquistEstimator()
        matrix = make_matrix(64, seed=5)
        via_method = estimator.estimate_batch(matrix, 1.0)
        via_function = batch_estimate(matrix, 1.0, estimator=estimator)
        for a, b in zip(via_method, via_function):
            assert_equivalent(a, b)

    @pytest.mark.parametrize("window", ["rectangular", "hann"])
    def test_fft_workers_do_not_change_results(self, window):
        """pocketfft worker threads parallelise across rows only, so the
        per-row estimates must be bit-identical to the single-threaded run."""
        estimator = NyquistEstimator(window=window)
        matrix = make_matrix(128, rows=16, seed=13)
        single = batch_estimate(matrix, 2.0, estimator=estimator)
        threaded = batch_estimate(matrix, 2.0, estimator=estimator, fft_workers=4)
        for a, b in zip(single, threaded):
            assert a.nyquist_rate == b.nyquist_rate
            assert a.reliable == b.reliable
            assert a.captured_fraction == b.captured_fraction
            assert a.total_energy == b.total_energy

    def test_randomised_sweep(self):
        """Property-style: many random shapes/configs, scalar == batched."""
        rng = np.random.default_rng(2024)
        for trial in range(10):
            n = int(rng.integers(16, 200))
            rows = int(rng.integers(1, 6))
            interval = float(rng.uniform(0.1, 600.0))
            estimator = NyquistEstimator(
                energy_fraction=float(rng.uniform(0.5, 1.0)),
                window=["rectangular", "hann", "hamming", "blackman"][int(rng.integers(4))],
                detrend=bool(rng.integers(2)),
            )
            matrix = rng.normal(size=(rows, n)).cumsum(axis=1)
            if rows > 1:
                matrix[0] = float(rng.normal())  # one constant row per batch
            batched = batch_estimate(matrix, interval, estimator=estimator)
            for index in range(rows):
                scalar = estimator.estimate(TimeSeries(matrix[index], interval))
                assert_equivalent(scalar, batched[index])
