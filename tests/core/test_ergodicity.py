"""Unit tests for the ergodicity analysis (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ergodicity import (ensemble_statistics, ergodicity_gap, ergodicity_report,
                                   minimum_canary_size, time_statistics)
from repro.signals.generators import sine
from repro.signals.timeseries import TimeSeries


def ergodic_fleet(n_devices=20, n_samples=500, rng=None):
    """Devices that are phase-shifted copies of the same process (ergodic-ish)."""
    rng = rng or np.random.default_rng(3)
    fleet = []
    for _ in range(n_devices):
        phase = rng.uniform(0, 2 * np.pi)
        values = 50.0 + 10.0 * np.sin(np.linspace(0, 40 * np.pi, n_samples) + phase)
        fleet.append(TimeSeries(values, 60.0))
    return fleet


def non_ergodic_fleet(n_devices=20, n_samples=500, rng=None):
    """Devices with wildly different fixed levels (time averages never converge)."""
    rng = rng or np.random.default_rng(4)
    return [TimeSeries(np.full(n_samples, float(level)), 60.0)
            for level in rng.uniform(10.0, 90.0, size=n_devices)]


class TestStatistics:
    def test_ensemble_statistics_keys(self):
        stats = ensemble_statistics(ergodic_fleet())
        assert set(stats) == {"mean", "std", "p50", "p95"}

    def test_ensemble_statistics_at_index(self):
        fleet = ergodic_fleet()
        assert ensemble_statistics(fleet, at_index=0)["mean"] == pytest.approx(
            np.mean([series.values[0] for series in fleet]))

    def test_ensemble_rejects_bad_index(self):
        with pytest.raises(ValueError):
            ensemble_statistics(ergodic_fleet(), at_index=10 ** 6)

    def test_ensemble_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            ensemble_statistics([])

    def test_time_statistics_duration_prefix(self):
        series = sine(0.1, duration=100.0, sampling_rate=10.0, offset=5.0)
        full = time_statistics(series)
        prefix = time_statistics(series, duration=10.0)
        assert full["mean"] == pytest.approx(5.0, abs=0.1)
        assert set(prefix) == set(full)


class TestErgodicityGap:
    def test_ergodic_fleet_has_small_gap(self):
        gap = ergodicity_gap(ergodic_fleet())
        assert gap < 0.1

    def test_non_ergodic_fleet_has_large_gap_for_some_device(self):
        fleet = non_ergodic_fleet()
        gaps = [ergodicity_gap(fleet, device_index=i) for i in range(len(fleet))]
        assert max(gaps) > 0.3

    def test_rejects_bad_device_index(self):
        with pytest.raises(ValueError):
            ergodicity_gap(ergodic_fleet(), device_index=999)

    def test_report_structure(self):
        report = ergodicity_report(ergodic_fleet(), fractions=(0.25, 0.5, 1.0))
        assert len(report.durations) == 3
        assert len(report.gaps) == 3
        assert report.durations[-1] > report.durations[0]

    def test_report_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ergodicity_report(ergodic_fleet(), fractions=(0.0,))

    def test_converged_duration(self):
        report = ergodicity_report(ergodic_fleet(), fractions=(0.5, 1.0))
        assert report.converged_duration(tolerance=0.2) is not None
        non_ergodic = ergodicity_report(non_ergodic_fleet(), device_index=0,
                                        fractions=(0.5, 1.0))
        # A constant device far from the fleet mean never converges.
        if non_ergodic.gaps[-1] > 0.2:
            assert non_ergodic.converged_duration(tolerance=0.2) is None


class TestCanarySize:
    def test_homogeneous_fleet_needs_small_canary(self):
        fleet = [TimeSeries(np.full(100, 50.0), 60.0) for _ in range(30)]
        assert minimum_canary_size(fleet, tolerance=0.01) == 1

    def test_heterogeneous_fleet_needs_larger_canary(self):
        fleet = non_ergodic_fleet(n_devices=30)
        size = minimum_canary_size(fleet, tolerance=0.05, rng=np.random.default_rng(0))
        assert size > 3

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            minimum_canary_size(ergodic_fleet(), tolerance=0.0)
