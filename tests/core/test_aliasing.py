"""Unit tests for the dual-frequency aliasing detector (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.aliasing import DualRateAliasingDetector, compare_spectra, detect_aliasing
from repro.core.psd import periodogram
from repro.signals.generators import multi_tone, sine
from repro.signals.noise import add_white_noise


def sample_two_tone(rate: float, duration: float = 2.0):
    """Directly sample the 400+440 Hz continuous signal at the given rate."""
    return multi_tone([400.0, 440.0], duration, rate)


class TestDetectorConfiguration:
    def test_rejects_integer_ratio(self):
        with pytest.raises(ValueError):
            DualRateAliasingDetector(rate_ratio=2.0)

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ValueError):
            DualRateAliasingDetector(rate_ratio=0.5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DualRateAliasingDetector(threshold=0.0)

    def test_rejects_bad_min_samples(self):
        with pytest.raises(ValueError):
            DualRateAliasingDetector(min_samples=1)

    def test_probe_rates(self):
        detector = DualRateAliasingDetector(rate_ratio=1.6)
        slow, fast = detector.probe_rates(10.0)
        assert slow == 10.0
        assert fast == pytest.approx(16.0)

    def test_probe_rates_reject_bad_rate(self):
        with pytest.raises(ValueError):
            DualRateAliasingDetector().probe_rates(0.0)


class TestDetection:
    def test_no_aliasing_above_nyquist(self):
        detector = DualRateAliasingDetector()
        verdict = detector.check_samples(sample_two_tone(900.0), sample_two_tone(1440.0))
        assert not verdict.aliased
        assert verdict.discrepancy < detector.threshold

    def test_aliasing_below_nyquist(self):
        detector = DualRateAliasingDetector()
        verdict = detector.check_samples(sample_two_tone(600.0), sample_two_tone(960.0))
        assert verdict.aliased
        assert verdict.margin > 0

    def test_aliasing_slightly_below_nyquist(self):
        detector = DualRateAliasingDetector()
        verdict = detector.check_samples(sample_two_tone(800.0), sample_two_tone(1280.0))
        assert verdict.aliased

    def test_order_of_arguments_does_not_matter(self):
        detector = DualRateAliasingDetector()
        a = detector.check_samples(sample_two_tone(600.0), sample_two_tone(960.0))
        b = detector.check_samples(sample_two_tone(960.0), sample_two_tone(600.0))
        assert a.aliased == b.aliased

    def test_too_few_samples_returns_not_aliased(self):
        detector = DualRateAliasingDetector(min_samples=16)
        verdict = detector.check_samples(sample_two_tone(600.0, duration=0.01),
                                         sample_two_tone(960.0, duration=0.01))
        assert not verdict.aliased
        assert verdict.discrepancy == 0.0

    def test_noise_tolerance(self, rng):
        # A clean slow tone plus small noise sampled at two adequate rates
        # should not trigger the detector.
        detector = DualRateAliasingDetector()
        slow = add_white_noise(sine(1.0, duration=30.0, sampling_rate=10.0, amplitude=5.0),
                               0.05, rng=rng)
        fast = add_white_noise(sine(1.0, duration=30.0, sampling_rate=16.0, amplitude=5.0),
                               0.05, rng=rng)
        assert not detector.check_samples(slow, fast).aliased

    def test_check_signal_from_reference(self, two_tone):
        detector = DualRateAliasingDetector()
        assert detector.check_signal(two_tone, candidate_rate=600.0).aliased
        assert not detector.check_signal(two_tone, candidate_rate=1000.0).aliased

    def test_check_signal_rejects_too_fast_candidate(self, two_tone):
        detector = DualRateAliasingDetector()
        with pytest.raises(ValueError):
            detector.check_signal(two_tone, candidate_rate=1900.0)

    def test_detect_aliasing_helper(self, two_tone):
        assert detect_aliasing(two_tone, 500.0).aliased
        assert not detect_aliasing(two_tone, 1100.0).aliased


class TestCompareSpectra:
    def test_identical_spectra_have_zero_discrepancy(self, two_tone):
        spectrum = periodogram(two_tone)
        discrepancy, band = compare_spectra(spectrum, spectrum)
        assert discrepancy == pytest.approx(0.0, abs=1e-9)
        assert band == pytest.approx(spectrum.max_frequency)

    def test_disjoint_spectra_have_large_discrepancy(self):
        low = periodogram(sine(1.0, duration=10.0, sampling_rate=50.0))
        high = periodogram(sine(20.0, duration=10.0, sampling_rate=50.0))
        discrepancy, _ = compare_spectra(low, high)
        assert discrepancy > 0.9

    def test_amplitude_scaling_does_not_register(self, two_tone):
        spectrum = periodogram(two_tone)
        scaled = periodogram(two_tone * 3.0)
        discrepancy, _ = compare_spectra(spectrum, scaled)
        assert discrepancy < 0.01
