"""Unit tests for the reconstruction-error metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import (compare, l2_distance, max_abs_error, mean_abs_error, nrmse,
                               rmse)
from repro.signals.timeseries import TimeSeries


def series(values, interval=1.0):
    return TimeSeries(np.asarray(values, float), interval)


class TestMetrics:
    def test_identical_series_all_zero(self, sine_1hz):
        assert l2_distance(sine_1hz, sine_1hz) == 0.0
        assert rmse(sine_1hz, sine_1hz) == 0.0
        assert nrmse(sine_1hz, sine_1hz) == 0.0
        assert max_abs_error(sine_1hz, sine_1hz) == 0.0
        assert mean_abs_error(sine_1hz, sine_1hz) == 0.0

    def test_l2_distance_known_value(self):
        assert l2_distance(series([0.0, 0.0]), series([3.0, 4.0])) == pytest.approx(5.0)

    def test_rmse_known_value(self):
        assert rmse(series([0.0, 0.0]), series([2.0, 2.0])) == pytest.approx(2.0)

    def test_nrmse_normalises_by_range(self):
        original = series([0.0, 10.0])
        shifted = series([1.0, 11.0])
        assert nrmse(original, shifted) == pytest.approx(0.1)

    def test_nrmse_constant_original(self):
        flat = series([5.0, 5.0])
        assert nrmse(flat, flat) == 0.0
        assert math.isnan(nrmse(flat, series([5.0, 6.0])))

    def test_max_and_mean_abs(self):
        original = series([0.0, 0.0, 0.0])
        other = series([1.0, -2.0, 0.5])
        assert max_abs_error(original, other) == 2.0
        assert mean_abs_error(original, other) == pytest.approx(3.5 / 3.0)

    def test_length_mismatch_compares_overlap(self):
        longer = series([1.0, 2.0, 3.0, 4.0])
        shorter = series([1.0, 2.0, 3.0])
        assert l2_distance(longer, shorter) == 0.0

    def test_empty_comparison_rejected(self):
        with pytest.raises(ValueError):
            l2_distance(series([]), series([]))


class TestCompareBundle:
    def test_bundle_matches_individual_metrics(self, sine_1hz):
        other = sine_1hz + 0.5
        bundle = compare(sine_1hz, other)
        assert bundle.l2 == pytest.approx(l2_distance(sine_1hz, other))
        assert bundle.rmse == pytest.approx(rmse(sine_1hz, other))
        assert bundle.nrmse == pytest.approx(nrmse(sine_1hz, other))
        assert bundle.max_abs == pytest.approx(0.5)
        assert bundle.samples_compared == len(sine_1hz)

    def test_is_exact(self, sine_1hz):
        assert compare(sine_1hz, sine_1hz).is_exact()
        assert not compare(sine_1hz, sine_1hz + 1.0).is_exact()

    def test_str_contains_metrics(self, sine_1hz):
        text = str(compare(sine_1hz, sine_1hz))
        assert "L2=" in text and "RMSE=" in text
