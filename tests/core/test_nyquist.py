"""Unit tests for the Section 3.2 Nyquist-rate estimator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.nyquist import (ALIASED_SENTINEL, NyquistEstimator, estimate_nyquist_rate,
                                oversampling_ratio)
from repro.signals.generators import band_limited_noise, constant, sine
from repro.signals.noise import add_white_noise, white_noise
from repro.signals.timeseries import IrregularTimeSeries, TimeSeries


class TestEstimatorOnKnownSignals:
    def test_pure_tone(self):
        series = sine(5.0, duration=10.0, sampling_rate=100.0)
        estimate = estimate_nyquist_rate(series)
        assert estimate.reliable
        assert estimate.nyquist_rate == pytest.approx(10.0, rel=0.05)

    def test_two_tone_uses_highest_component(self, two_tone):
        estimate = estimate_nyquist_rate(two_tone)
        assert estimate.nyquist_rate == pytest.approx(880.0, rel=0.02)

    def test_band_limited_noise(self, rng):
        series = band_limited_noise(4.0, duration=20.0, sampling_rate=100.0, rng=rng)
        estimate = estimate_nyquist_rate(series)
        assert estimate.reliable
        assert 6.0 <= estimate.nyquist_rate <= 9.0

    def test_slow_metric_large_reduction_ratio(self, slow_metric_trace):
        estimate = estimate_nyquist_rate(slow_metric_trace)
        assert estimate.reliable
        assert estimate.reduction_ratio > 50

    def test_white_noise_offers_no_headroom(self, rng):
        # A full-band signal must never be reported as meaningfully
        # over-sampled: either the estimator refuses (strict "all bins"
        # rule) or the cut-off sits essentially at the band edge.
        series = white_noise(100.0, 10.0, std=1.0, rng=rng)
        estimate = estimate_nyquist_rate(series)
        if estimate.reliable:
            assert estimate.reduction_ratio < 1.3
        else:
            assert estimate.nyquist_rate == ALIASED_SENTINEL
            assert math.isnan(estimate.reduction_ratio)

    def test_white_noise_flagged_with_band_fraction_rule(self, rng):
        series = white_noise(100.0, 10.0, std=1.0, rng=rng)
        estimate = NyquistEstimator(aliased_band_fraction=0.9).estimate(series)
        assert not estimate.reliable
        assert estimate.nyquist_rate == ALIASED_SENTINEL

    def test_constant_trace_gets_minimal_rate(self):
        series = constant(42.0, duration=1000.0, sampling_rate=1.0)
        estimate = estimate_nyquist_rate(series)
        assert estimate.reliable
        assert estimate.reason == "constant trace"
        assert estimate.nyquist_rate == pytest.approx(1.0 / series.duration)
        assert estimate.reduction_ratio > 100

    def test_tone_with_mild_noise_still_estimated(self, rng):
        series = sine(2.0, duration=20.0, sampling_rate=100.0, amplitude=5.0)
        noisy = add_white_noise(series, 0.05, rng=rng)
        estimate = estimate_nyquist_rate(noisy)
        assert estimate.reliable
        assert estimate.nyquist_rate == pytest.approx(4.0, rel=0.3)

    def test_short_trace_rejected(self):
        series = sine(1.0, duration=1.0, sampling_rate=8.0)
        estimate = estimate_nyquist_rate(series)
        assert not estimate.reliable
        assert estimate.reason == "trace too short"

    def test_irregular_trace_is_regularized_first(self, rng):
        series = sine(1.0, duration=30.0, sampling_rate=20.0)
        timestamps = series.times() + rng.normal(scale=0.005, size=len(series))
        irregular = IrregularTimeSeries(np.sort(timestamps), series.values)
        estimate = estimate_nyquist_rate(irregular)
        assert estimate.reliable
        assert estimate.nyquist_rate == pytest.approx(2.0, rel=0.2)


class TestEstimateProperties:
    def test_oversampled_flag(self, sine_1hz):
        estimate = estimate_nyquist_rate(sine_1hz)
        assert estimate.oversampled
        assert not estimate.undersampled

    def test_reduction_ratio_matches_rates(self, sine_1hz):
        estimate = estimate_nyquist_rate(sine_1hz)
        assert estimate.reduction_ratio == pytest.approx(
            estimate.current_rate / estimate.nyquist_rate)

    def test_estimate_never_exceeds_current_rate(self, slow_metric_trace, two_tone):
        for series in (slow_metric_trace, two_tone):
            estimate = estimate_nyquist_rate(series)
            assert estimate.nyquist_rate <= estimate.current_rate + 1e-9

    def test_aliased_suspect_property(self, rng):
        series = white_noise(100.0, 10.0, rng=rng)
        estimate = NyquistEstimator(aliased_band_fraction=0.9).estimate(series)
        assert estimate.is_aliased_suspect

    def test_oversampling_ratio_helper(self, sine_1hz):
        assert oversampling_ratio(sine_1hz) == pytest.approx(
            estimate_nyquist_rate(sine_1hz).reduction_ratio)


class TestEstimatorConfiguration:
    def test_rejects_bad_energy_fraction(self):
        with pytest.raises(ValueError):
            NyquistEstimator(energy_fraction=0.0)
        with pytest.raises(ValueError):
            NyquistEstimator(energy_fraction=1.5)

    def test_rejects_bad_min_samples(self):
        with pytest.raises(ValueError):
            NyquistEstimator(min_samples=2)

    def test_rejects_bad_band_fraction(self):
        with pytest.raises(ValueError):
            NyquistEstimator(aliased_band_fraction=0.0)

    def test_higher_energy_fraction_gives_higher_estimate(self, rng):
        series = add_white_noise(
            sine(1.0, duration=60.0, sampling_rate=50.0, amplitude=5.0), 0.15, rng=rng)
        low = NyquistEstimator(energy_fraction=0.99).estimate(series)
        high = NyquistEstimator(energy_fraction=0.9999).estimate(series)
        if low.reliable and high.reliable:
            assert high.nyquist_rate >= low.nyquist_rate

    def test_include_dc_changes_accounting(self):
        # With a huge DC offset and include_dc=True, the DC bin alone
        # captures 99% of the energy, so the cut-off collapses to the
        # lowest frequencies.
        series = sine(5.0, duration=10.0, sampling_rate=100.0, amplitude=0.1, offset=1000.0)
        without_dc = NyquistEstimator(include_dc=False).estimate(series)
        with_dc = NyquistEstimator(include_dc=True).estimate(series)
        assert without_dc.nyquist_rate == pytest.approx(10.0, rel=0.1)
        assert with_dc.nyquist_rate < without_dc.nyquist_rate

    def test_welch_method_works(self, rng):
        series = add_white_noise(
            sine(2.0, duration=60.0, sampling_rate=50.0, amplitude=4.0), 0.05, rng=rng)
        estimate = NyquistEstimator(psd_method="welch").estimate(series)
        assert estimate.reliable
        assert estimate.nyquist_rate == pytest.approx(4.0, rel=0.5)

    def test_detrend_suppresses_leakage_from_trend(self):
        # A linear ramp plus a slow tone: without detrending the ramp's
        # leakage inflates the estimate.
        n = 512
        ramp = np.linspace(0.0, 50.0, n)
        tone = 2.0 * np.sin(2 * np.pi * 0.01 * np.arange(n))
        series = TimeSeries(ramp + tone, 1.0)
        plain = NyquistEstimator().estimate(series)
        detrended = NyquistEstimator(detrend=True, window="hann").estimate(series)
        assert detrended.nyquist_rate <= plain.nyquist_rate
        assert detrended.nyquist_rate == pytest.approx(0.02, rel=0.5)

    def test_flat_tolerance_treats_tiny_variation_as_constant(self):
        values = 100.0 + 0.0001 * np.sin(np.linspace(0, 20 * np.pi, 200))
        series = TimeSeries(values, 1.0)
        estimate = NyquistEstimator(flat_tolerance=0.001).estimate(series)
        assert estimate.reason == "constant trace"

    def test_estimate_from_spectrum_direct(self, sine_1hz):
        estimator = NyquistEstimator()
        spectrum = estimator.compute_spectrum(sine_1hz)
        estimate = estimator.estimate_from_spectrum(spectrum)
        assert estimate.nyquist_rate == pytest.approx(2.0, rel=0.1)

    def test_aliased_band_fraction_flags_near_edge_energy(self, rng):
        # Noise-dominated trace: with a strict rule it may squeak through,
        # with a 0.9 band fraction it must be flagged.
        series = white_noise(200.0, 5.0, std=1.0, rng=rng)
        strict = NyquistEstimator(aliased_band_fraction=1.0).estimate(series)
        loose = NyquistEstimator(aliased_band_fraction=0.9).estimate(series)
        assert not loose.reliable
        if strict.reliable:
            assert strict.reduction_ratio < 1.3
