"""Shared column-spec serialiser tests, parametrised over every block type.

Both columnar block classes -- the Nyquist survey's
:class:`~repro.analysis.survey.RecordBlock` and the policy survey's
:class:`~repro.pipeline.evaluation.PolicyRecordBlock` -- serialise through
the one schema-driven implementation in :mod:`repro.records`
(:class:`~repro.records.ColumnarBlock`).  These tests pin the shared
contract once for all block types: lossless npz/csv round trips (floats
bit for bit, NaNs included), zero-row blocks keeping their block-level
scalars, spill-file sniffing that tells the types apart, legacy csv files
without the scalar comment lines, and loud ``ValueError``s naming the
offending file on corruption.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.survey import RecordBlock
from repro.pipeline.evaluation import PolicyRecordBlock
from repro.records import (RCB_MAGIC, BlockSchema, ColumnSpec, FailureRecord,
                           FailureRecordBlock, ScalarSpec, SpillingRecordSink,
                           read_rcb_header, registered_block_types)

# ----------------------------------------------------------------------
# One sample block per registered type (NaNs included to pin bit-exact
# float round trips; device ids of different lengths to pin str dtype).
# ----------------------------------------------------------------------


def make_record_block(rows: int = 3) -> RecordBlock:
    return RecordBlock(
        metric_name="Temperature",
        device_ids=np.array([f"tor-{i:04d}" for i in range(rows)], dtype=np.str_),
        current_rate=np.full(rows, 1.0 / 300.0),
        nyquist_rate=np.linspace(1e-4, 2e-3, rows),
        reduction_ratio=np.array([np.nan] + [1.7 ** i for i in range(1, rows)]),
        category=np.arange(rows) % 3,
        reliable=np.arange(rows) % 2 == 0,
        true_nyquist_rate=np.full(rows, np.nan),
        trace_duration=np.full(rows, 86400.0),
    )


def make_policy_block(rows: int = 3) -> PolicyRecordBlock:
    return PolicyRecordBlock(
        metric_name="Link util",
        policy_name="nyquist-static",
        device_ids=np.array([f"leaf-{i}" for i in range(rows)], dtype=np.str_),
        samples=np.arange(rows) * 7 + 2,
        mean_rate_hz=np.linspace(0.01, 0.5, rows),
        nrmse=np.array([0.01] * (rows - 1) + [np.nan]),
        max_abs_error=np.linspace(0.0, 2.0, rows),
        hops=np.arange(rows) + 1,
        collection_cpu_us=np.linspace(1.0, 9.0, rows),
        transmission=np.linspace(10.0, 90.0, rows),
        storage_bytes=np.linspace(8.0, 64.0, rows),
        analysis=np.zeros(rows),
        detected=np.array([-1, 0, 1][:rows]),
        detection_latency=np.array([np.nan, np.nan, 42.5][:rows]),
    )


def make_failure_block(rows: int = 3) -> FailureRecordBlock:
    return FailureRecordBlock.from_failures([
        FailureRecord(metric_name="Link util", device_id=f"tor-{i:04d}",
                      stage=("trace", "estimate", "parse")[i % 3],
                      error_type="ValueError",
                      message=f"corrupt or truncated trace file #{i}",
                      provenance=f"Link util[{i}] traces/{i}.npz")
        for i in range(rows)])


BLOCK_FACTORIES = {RecordBlock: make_record_block,
                   PolicyRecordBlock: make_policy_block,
                   FailureRecordBlock: make_failure_block}


def assert_blocks_equal(a, b) -> None:
    assert type(a) is type(b)
    schema = type(a)._SCHEMA
    for spec in schema.scalars:
        assert getattr(a, spec.name) == getattr(b, spec.name)
    for spec in schema.columns:
        left, right = getattr(a, spec.name), getattr(b, spec.name)
        assert left.dtype.kind == right.dtype.kind
        if left.dtype.kind == "f":
            assert np.array_equal(left, right, equal_nan=True)
        else:
            assert np.array_equal(left, right)


@pytest.fixture(params=list(BLOCK_FACTORIES), ids=lambda cls: cls.__name__)
def block(request):
    return BLOCK_FACTORIES[request.param]()


@pytest.fixture(params=list(BLOCK_FACTORIES), ids=lambda cls: cls.__name__)
def empty_block(request):
    factory = BLOCK_FACTORIES[request.param]
    full = factory(2)
    schema = type(full)._SCHEMA
    fields = {spec.name: getattr(full, spec.name) for spec in schema.scalars}
    fields.update({spec.name: getattr(full, spec.name)[:0] for spec in schema.columns})
    return type(full)(**fields)


# ----------------------------------------------------------------------
class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["npz", "csv", "rcb"])
    def test_round_trip_is_lossless(self, block, fmt, tmp_path):
        path = tmp_path / f"block.{fmt}"
        getattr(block, f"save_{fmt}")(path)
        loaded = getattr(type(block), f"load_{fmt}")(path)
        assert_blocks_equal(block, loaded)

    @pytest.mark.parametrize("fmt", ["npz", "csv", "rcb"])
    def test_zero_row_block_keeps_scalars(self, empty_block, fmt, tmp_path):
        path = tmp_path / f"empty.{fmt}"
        getattr(empty_block, f"save_{fmt}")(path)
        loaded = getattr(type(empty_block), f"load_{fmt}")(path)
        assert len(loaded) == 0
        assert_blocks_equal(empty_block, loaded)

    def test_legacy_csv_without_scalar_comments_loads(self, block, tmp_path):
        # Files written before the comment lines existed start straight at
        # the header; the scalars are then recovered from the data rows.
        path = tmp_path / "block.csv"
        block.save_csv(path)
        lines = path.read_text().splitlines(keepends=True)
        stripped = [line for line in lines if not line.startswith("#")]
        legacy = tmp_path / "legacy.csv"
        legacy.write_text("".join(stripped))
        loaded = type(block).load_csv(legacy)
        assert_blocks_equal(block, loaded)

    def test_csv_is_the_documented_flat_layout(self, block, tmp_path):
        path = tmp_path / "block.csv"
        block.save_csv(path)
        lines = path.read_text().splitlines()
        schema = type(block)._SCHEMA
        comments = [line for line in lines if line.startswith("#")]
        assert comments == [f"{spec.comment_prefix}{getattr(block, spec.name)}"
                            for spec in schema.scalars]
        header = lines[len(comments)]
        assert header == ",".join(schema.csv_header)


class TestCorruption:
    def test_missing_npz_member_raises_value_error(self, block, tmp_path):
        path = tmp_path / "block.npz"
        first_column = type(block)._SCHEMA.columns[0].name
        members = {spec.name: np.array(getattr(block, spec.name))
                   for spec in type(block)._SCHEMA.scalars}
        members.update({spec.name: getattr(block, spec.name)
                        for spec in type(block)._SCHEMA.columns})
        del members[first_column]
        np.savez_compressed(path, **members)
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_npz(path)

    def test_truncated_npz_raises_value_error(self, block, tmp_path):
        path = tmp_path / "block.npz"
        block.save_npz(path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_npz(path)

    def test_truncated_rcb_raises_value_error_naming_path(self, block, tmp_path):
        path = tmp_path / "block.rcb"
        block.save_rcb(path)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_rcb(path)

    def test_rcb_truncated_inside_header_raises_value_error(self, block, tmp_path):
        path = tmp_path / "block.rcb"
        block.save_rcb(path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_rcb(path)

    def test_rcb_bad_magic_raises_value_error(self, block, tmp_path):
        path = tmp_path / "block.rcb"
        block.save_rcb(path)
        data = bytearray(path.read_bytes())
        assert data[:4] == RCB_MAGIC
        data[:4] = b"JUNK"
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_rcb(path)

    def test_rcb_garbled_header_json_raises_value_error(self, block, tmp_path):
        path = tmp_path / "block.rcb"
        block.save_rcb(path)
        data = bytearray(path.read_bytes())
        data[8] = 0xFF  # first header byte: no longer valid UTF-8 JSON
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_rcb(path)

    def test_rcb_missing_member_raises_value_error(self, block, tmp_path):
        import json
        import struct
        path = tmp_path / "block.rcb"
        block.save_rcb(path)
        data = path.read_bytes()
        (header_len,) = struct.unpack("<I", data[4:8])
        header = json.loads(data[8:8 + header_len])
        header["columns"] = header["columns"][1:]
        raw = json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode("ascii")
        # Pad the shrunken header with whitespace (still valid JSON) so
        # the data region keeps its original offsets; only the member
        # entry is gone.
        raw = raw.ljust(header_len, b" ")
        path.write_bytes(data[:8] + raw + data[8 + header_len:])
        with pytest.raises(ValueError, match=str(path)):
            type(block).load_rcb(path)

    def test_empty_csv_raises_value_error(self, block, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="missing CSV header"):
            type(block).load_csv(path)

    def test_wrong_csv_header_raises_value_error(self, block, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("what,is,this\n1,2,3\n")
        with pytest.raises(ValueError, match="unexpected CSV header"):
            type(block).load_csv(path)

    def test_truncated_csv_row_names_file_and_row(self, block, tmp_path):
        path = tmp_path / "block.csv"
        block.save_csv(path)
        lines = path.read_text().splitlines(keepends=True)
        cells = lines[-1].split(",")
        lines[-1] = ",".join(cells[: len(cells) // 2])
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match=f"data row {len(block)}"):
            type(block).load_csv(path)

    def test_garbage_csv_cell_names_file_and_row(self, block, tmp_path):
        schema = type(block)._SCHEMA
        float_columns = [index for index, spec in enumerate(schema.columns)
                         if spec.kind == "float"]
        if not float_columns:
            pytest.skip("all-string schema: every cell is a valid value")
        path = tmp_path / "block.csv"
        block.save_csv(path)
        text = path.read_text()
        # Corrupt the last float cell of the first data row.
        lines = text.splitlines(keepends=True)
        first_data = next(index for index, line in enumerate(lines)
                          if not line.startswith("#")) + 1
        cells = lines[first_data].rstrip("\r\n").split(",")
        cells[float_columns[-1]] = "not-a-number"
        lines[first_data] = ",".join(cells) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match="data row 1"):
            type(block).load_csv(path)


class TestSniffing:
    def test_both_types_are_registered(self):
        registered = registered_block_types()
        assert RecordBlock in registered
        assert PolicyRecordBlock in registered

    @pytest.mark.parametrize("fmt", ["npz", "csv", "rcb"])
    def test_sniffing_tells_the_types_apart(self, block, fmt, tmp_path):
        sink = SpillingRecordSink(tmp_path / "spool", fmt=fmt)
        sink.append(block)
        reopened = SpillingRecordSink(tmp_path / "spool", fmt=fmt)
        loaded = list(reopened.blocks())
        assert len(loaded) == 1
        assert type(loaded[0]) is type(block)
        assert_blocks_equal(block, loaded[0])
        # The other registered types must NOT claim this file.
        for other in registered_block_types():
            if other is type(block):
                continue
            if fmt == "npz":
                with np.load(sink.files[0]) as data:
                    assert not other.sniff_npz(tuple(data.files))
            elif fmt == "rcb":
                assert not other.sniff_rcb(read_rcb_header(sink.files[0]))
            else:
                head = sink.files[0].read_text().splitlines()[:4]
                assert not other.sniff_csv(head)


class TestSchemaValidation:
    def test_mismatched_column_length_raises(self, block):
        schema = type(block)._SCHEMA
        fields = {spec.name: getattr(block, spec.name) for spec in schema.scalars}
        fields.update({spec.name: getattr(block, spec.name) for spec in schema.columns})
        last = schema.columns[-1].name
        fields[last] = fields[last][:-1]
        with pytest.raises(ValueError, match=last):
            type(block)(**fields)

    def test_schema_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown column kind"):
            ColumnSpec("x", "complex")

    def test_schema_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            BlockSchema(scalars=(ScalarSpec("x", "x"),),
                        columns=(ColumnSpec("x", "float"),))

    def test_schema_requires_a_column(self):
        with pytest.raises(ValueError, match="at least one column"):
            BlockSchema(scalars=(ScalarSpec("x", "x"),), columns=())
