"""Unit tests for the fleet survey dataset (the 1613-pair stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.dataset import PAPER_PAIR_COUNT, DatasetConfig, FleetDataset
from repro.telemetry.metrics import METRIC_CATALOG


class TestDatasetConfig:
    def test_defaults_match_paper(self):
        config = DatasetConfig()
        assert config.pair_count == PAPER_PAIR_COUNT == 1613
        assert config.trace_duration == 86400.0
        assert len(config.metrics) == 14

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DatasetConfig(pair_count=0)
        with pytest.raises(ValueError):
            DatasetConfig(trace_duration=-1.0)
        with pytest.raises(ValueError):
            DatasetConfig(metrics=("NotAMetric",))
        with pytest.raises(ValueError):
            DatasetConfig(broadband_fraction=2.0)
        with pytest.raises(ValueError):
            DatasetConfig(metrics=())


class TestFleetDataset:
    def test_pair_count_is_exact(self, small_dataset):
        assert len(small_dataset) == 42

    def test_paper_scale_pair_count(self):
        dataset = FleetDataset(DatasetConfig(pair_count=1613, seed=1))
        assert len(dataset.pairs()) == 1613

    def test_pairs_split_evenly_across_metrics(self, small_dataset):
        counts = {}
        for pair in small_dataset.pairs():
            counts[pair.metric.name] = counts.get(pair.metric.name, 0) + 1
        assert set(counts) == set(METRIC_CATALOG)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_pairs_are_unique(self, small_dataset):
        keys = [pair.key for pair in small_dataset.pairs()]
        assert len(keys) == len(set(keys))

    def test_pairs_cached(self, small_dataset):
        assert small_dataset.pairs() is small_dataset.pairs()

    def test_deterministic_across_instances(self):
        a = FleetDataset(DatasetConfig(pair_count=28, seed=9))
        b = FleetDataset(DatasetConfig(pair_count=28, seed=9))
        assert [p.key for p in a.pairs()] == [p.key for p in b.pairs()]
        pair_a, trace_a = next(a.traces())
        pair_b, trace_b = next(b.traces())
        assert pair_a.key == pair_b.key
        np.testing.assert_allclose(trace_a.values, trace_b.values)

    def test_different_seeds_differ(self):
        a = FleetDataset(DatasetConfig(pair_count=28, seed=1))
        b = FleetDataset(DatasetConfig(pair_count=28, seed=2))
        values_a = next(a.traces())[1].values
        values_b = next(b.traces())[1].values
        assert not np.allclose(values_a, values_b)

    def test_load_uses_production_interval_by_default(self, small_dataset):
        pair = small_dataset.pairs()[0]
        trace = small_dataset.load(pair)
        assert trace.interval == pair.metric.poll_interval

    def test_load_with_custom_interval(self, small_dataset):
        pair = small_dataset.pairs()[0]
        trace = small_dataset.load(pair, interval=pair.metric.poll_interval / 2.0)
        assert trace.interval == pair.metric.poll_interval / 2.0

    def test_traces_filter_by_metric(self, small_dataset):
        traces = list(small_dataset.traces("Temperature"))
        assert traces
        assert all(pair.metric.name == "Temperature" for pair, _ in traces)

    def test_traces_limit(self, small_dataset):
        assert len(list(small_dataset.traces(limit=5))) == 5

    def test_traces_offset_slices_pair_list(self, small_dataset):
        keys = [pair.key for pair, _ in small_dataset.traces(limit=4)]
        shifted = [pair.key for pair, _ in small_dataset.traces(offset=2, limit=2)]
        assert shifted == keys[2:4]

    def test_traces_offset_past_end_fails_loudly(self, small_dataset):
        """Regression: an offset past the pair list used to yield nothing,
        so a stale worker batch spec silently dropped records."""
        with pytest.raises(ValueError, match="past the end"):
            list(small_dataset.traces(offset=len(small_dataset)))
        with pytest.raises(ValueError, match="Temperature"):
            count = len(small_dataset.pairs_for_metric("Temperature"))
            list(small_dataset.traces("Temperature", offset=count + 1))

    def test_trace_batches_offset_past_end_fails_loudly(self, small_dataset):
        with pytest.raises(ValueError, match="past the end"):
            list(small_dataset.trace_batches(offset=10 ** 9))

    def test_traces_rejects_negative_offset_and_limit(self, small_dataset):
        with pytest.raises(ValueError):
            list(small_dataset.traces(offset=-1))
        with pytest.raises(ValueError):
            list(small_dataset.traces(limit=-1))

    def test_broadband_fraction_roughly_respected(self):
        dataset = FleetDataset(DatasetConfig(pair_count=280, seed=3, broadband_fraction=0.11))
        fraction = np.mean([pair.parameters.broadband for pair in dataset.pairs()])
        assert 0.03 <= fraction <= 0.25

    def test_metric_names(self, small_dataset):
        assert small_dataset.metric_names() == list(METRIC_CATALOG)


class TestTraceBatches:
    def test_batches_cover_every_pair_in_order(self, small_dataset):
        flat_pairs = [pair for batch in small_dataset.trace_batches() for pair in batch.pairs]
        assert [p.key for p in flat_pairs] == [p.key for p, _ in small_dataset.traces()]

    def test_rows_match_individual_traces(self, small_dataset):
        expected = {pair.key: trace for pair, trace in small_dataset.traces("Temperature")}
        for batch in small_dataset.trace_batches("Temperature"):
            for row, pair in enumerate(batch.pairs):
                np.testing.assert_allclose(batch.values[row], expected[pair.key].values)
                assert batch.interval == expected[pair.key].interval

    def test_rows_share_shape_and_interval(self, small_dataset):
        for batch in small_dataset.trace_batches():
            assert batch.values.ndim == 2
            assert batch.values.shape[0] == len(batch)
            assert batch.sampling_rate == pytest.approx(1.0 / batch.interval)

    def test_chunk_size_bounds_batch_rows(self, small_dataset):
        batches = list(small_dataset.trace_batches(chunk_size=2))
        assert all(len(batch) <= 2 for batch in batches)
        flat = [pair.key for batch in batches for pair in batch.pairs]
        assert flat == [pair.key for pair, _ in small_dataset.traces()]

    def test_limit_applies_per_call(self, small_dataset):
        batches = list(small_dataset.trace_batches("Temperature", limit=2))
        assert sum(len(batch) for batch in batches) == 2

    def test_rejects_bad_chunk_size(self, small_dataset):
        with pytest.raises(ValueError):
            next(small_dataset.trace_batches(chunk_size=0))
