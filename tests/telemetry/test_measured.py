"""Unit tests for the measured (file-backed) fleet dataset and the export path."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.measured import (MANIFEST_FORMAT, MANIFEST_NAME, MeasuredFleetDataset,
                                      MeasuredPair, MeasuredSourceSpec, export_traces)
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.source import BaseTraceSource, TraceSource


@pytest.fixture(scope="module")
def dataset():
    return FleetDataset(DatasetConfig(pair_count=28, seed=5))


@pytest.fixture(scope="module")
def fleet_dir(dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet") / "recording"
    export_traces(dataset, directory)
    return directory


class TestExport:
    def test_writes_manifest_and_one_file_per_pair(self, dataset, fleet_dir):
        manifest = json.loads((fleet_dir / MANIFEST_NAME).read_text())
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["trace_format"] == "npz"
        assert manifest["trace_duration"] == dataset.config.trace_duration
        assert len(manifest["pairs"]) == len(dataset)
        assert len(list((fleet_dir / "traces").glob("pair-*.npz"))) == len(dataset)

    def test_manifest_preserves_survey_order(self, dataset, fleet_dir):
        manifest = json.loads((fleet_dir / MANIFEST_NAME).read_text())
        assert manifest["metrics"] == dataset.metric_names()
        assert [(entry["metric"], entry["device"]) for entry in manifest["pairs"]] == \
            [pair.key for pair in dataset.pairs()]

    def test_refuses_to_overwrite_existing_fleet(self, dataset, fleet_dir):
        with pytest.raises(ValueError, match="already holds"):
            export_traces(dataset, fleet_dir)

    def test_rejects_unknown_trace_format(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="format"):
            export_traces(dataset, tmp_path / "x", fmt="parquet")  # type: ignore[arg-type]

    def test_export_method_returns_measured_dataset(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet")
        assert isinstance(measured, MeasuredFleetDataset)
        assert len(measured) == len(dataset)


class TestMeasuredFleetDataset:
    def test_implements_trace_source_protocol(self, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        assert isinstance(measured, BaseTraceSource)
        assert isinstance(measured, TraceSource)

    def test_pair_table_matches_original(self, dataset, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        assert len(measured) == len(dataset)
        assert measured.metric_names() == dataset.metric_names()
        assert measured.trace_duration == dataset.trace_duration
        assert [pair.key for pair in measured.pairs()] == \
            [pair.key for pair in dataset.pairs()]
        for original, recorded in zip(dataset.pairs(), measured.pairs()):
            assert recorded.parameters.true_nyquist_rate == \
                original.parameters.true_nyquist_rate

    def test_traces_byte_identical_to_original(self, dataset, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        for (pair_a, trace_a), (pair_b, trace_b) in zip(dataset.traces(),
                                                        measured.traces()):
            assert pair_a.key == pair_b.key
            assert trace_a.interval == trace_b.interval
            assert np.array_equal(trace_a.values, trace_b.values)

    def test_csv_trace_format_round_trips(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet-csv", fmt="csv")
        for (_, trace_a), (_, trace_b) in zip(dataset.traces(limit=4),
                                              measured.traces(limit=4)):
            assert trace_a.interval == trace_b.interval
            assert np.array_equal(trace_a.values, trace_b.values)

    def test_pairs_for_metric(self, dataset, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        for metric in measured.metric_names():
            assert [p.key for p in measured.pairs_for_metric(metric)] == \
                [p.key for p in dataset.pairs_for_metric(metric)]

    def test_trace_batches_match_original(self, dataset, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        for batch_a, batch_b in zip(dataset.trace_batches(chunk_size=4),
                                    measured.trace_batches(chunk_size=4)):
            assert [p.key for p in batch_a.pairs] == [p.key for p in batch_b.pairs]
            assert batch_a.interval == batch_b.interval
            assert np.array_equal(batch_a.values, batch_b.values)

    def test_load_rejects_interval_override(self, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        pair = measured.pairs()[0]
        with pytest.raises(ValueError, match="fixed recorded interval"):
            measured.load(pair, interval=pair.interval / 2.0)

    def test_worker_spec_reopens_directory(self, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        spec = measured.worker_spec()
        assert isinstance(spec, MeasuredSourceSpec)
        hash(spec)  # must be usable as a worker-side cache key
        reopened = spec.open()
        assert [p.key for p in reopened.pairs()] == [p.key for p in measured.pairs()]

    def test_offset_past_manifest_fails_loudly(self, fleet_dir):
        """A batch spec addressing pairs beyond the manifest must not
        silently yield nothing (it would drop survey records)."""
        measured = MeasuredFleetDataset(fleet_dir)
        with pytest.raises(ValueError, match="past the end"):
            list(measured.traces(offset=len(measured)))
        with pytest.raises(ValueError, match="past the end"):
            list(measured.trace_batches("Temperature", offset=10 ** 6))

    def test_metric_property_uses_catalogue(self, fleet_dir):
        measured = MeasuredFleetDataset(fleet_dir)
        pair = measured.pairs()[0]
        assert pair.metric is METRIC_CATALOG[pair.metric_name]

    def test_metric_property_falls_back_for_unknown_names(self):
        pair = MeasuredPair(metric_name="Custom sensor", device=None,  # type: ignore
                            parameters=None, interval=15.0, length=10,  # type: ignore
                            file="traces/pair-00000.npz")
        spec = pair.metric
        assert spec.name == "Custom sensor"
        assert spec.poll_interval == 15.0


class TestCorruption:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match=MANIFEST_NAME):
            MeasuredFleetDataset(tmp_path)

    def test_unparseable_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ValueError, match="corrupt manifest"):
            MeasuredFleetDataset(tmp_path)

    def test_wrong_format_tag(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({
            "format": "something-else/9", "trace_format": "npz",
            "trace_duration": 1.0, "metrics": [], "pairs": []}))
        with pytest.raises(ValueError, match="unsupported manifest format"):
            MeasuredFleetDataset(tmp_path)

    def test_missing_manifest_keys(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": MANIFEST_FORMAT}))
        with pytest.raises(ValueError, match="corrupt manifest"):
            MeasuredFleetDataset(tmp_path)

    def test_truncated_npz_trace_file(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet")
        pair = measured.pairs()[0]
        (tmp_path / "fleet" / pair.file).write_bytes(b"not an npz file")
        with pytest.raises(ValueError, match="corrupt or truncated trace file"):
            measured.load(pair)

    def test_missing_trace_file(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet")
        pair = measured.pairs()[-1]
        (tmp_path / "fleet" / pair.file).unlink()
        with pytest.raises(ValueError, match="corrupt or truncated trace file"):
            measured.load(pair)

    def test_length_mismatch_against_manifest(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet")
        pair = measured.pairs()[0]
        np.savez_compressed(tmp_path / "fleet" / pair.file,
                            values=np.zeros(3), interval=np.float64(pair.interval),
                            start_time=np.float64(0.0))
        with pytest.raises(ValueError, match="truncated or corrupt"):
            measured.load(pair)

    def test_interval_mismatch_against_manifest(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet")
        pair = measured.pairs()[0]
        np.savez_compressed(tmp_path / "fleet" / pair.file,
                            values=np.zeros(pair.length),
                            interval=np.float64(pair.interval * 2.0),
                            start_time=np.float64(0.0))
        with pytest.raises(ValueError, match="interval"):
            measured.load(pair)

    def test_truncated_csv_trace_file(self, dataset, tmp_path):
        measured = dataset.export(tmp_path / "fleet", fmt="csv")
        pair = measured.pairs()[0]
        path = tmp_path / "fleet" / pair.file
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[: len(lines) // 2]))
        with pytest.raises(ValueError, match="truncated"):
            measured.load(pair)

    def test_csv_timestamp_spacing_mismatch_against_manifest(self, dataset, tmp_path):
        """A csv recording whose timestamps disagree with the manifest
        interval must fail, not load as a silently mis-rated trace."""
        measured = dataset.export(tmp_path / "fleet", fmt="csv")
        pair = measured.pairs()[0]
        path = tmp_path / "fleet" / pair.file
        times = np.arange(pair.length) * (pair.interval * 2.0)  # recorded at half rate
        path.write_text("timestamp,value\n" +
                        "\n".join(f"{float(t)!r},0.0" for t in times) + "\n")
        with pytest.raises(ValueError, match="timestamp spacing"):
            measured.load(pair)

    def test_metrics_list_must_cover_every_pair(self, dataset, tmp_path):
        """Pairs whose metric is missing from the manifest 'metrics' list
        would be silently skipped by the survey loop -- reject at open."""
        directory = tmp_path / "fleet"
        export_traces(dataset, directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["metrics"] = manifest["metrics"][:-1]
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="silently drop"):
            MeasuredFleetDataset(directory)

    def test_metrics_list_rejects_duplicates(self, dataset, tmp_path):
        directory = tmp_path / "fleet"
        export_traces(dataset, directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["metrics"].append(manifest["metrics"][0])
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="duplicate"):
            MeasuredFleetDataset(directory)


class TestMeasuredWithoutGroundTruth:
    def test_nan_true_rate_survives_round_trip(self, dataset, tmp_path):
        """Genuinely measured data has no planted ground truth: NaN entries
        in the manifest must load as NaN, not crash."""
        directory = tmp_path / "fleet"
        export_traces(dataset, directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        for entry in manifest["pairs"]:
            entry["true_nyquist_rate"] = float("nan")
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        measured = MeasuredFleetDataset(directory)
        assert all(math.isnan(pair.parameters.true_nyquist_rate)
                   for pair in measured.pairs())
