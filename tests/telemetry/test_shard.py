"""Sharded ingest determinism: any worker count, byte for byte.

The contract of :func:`repro.telemetry.ingest.ingest_dump` with
``workers=N`` is that N is *invisible in the output*: the published
fleet directory -- the manifest bytes and every trace file -- is
identical whether the dump was parsed serially or split across byte
ranges and hash-routed shards.  These tests exercise that property over
the adversarial stream shapes the serial importer already guarantees
order-independence for (shuffled, reversed, duplicated dumps, both wire
formats), plus the supporting machinery: byte-range planning, the
sha256 pair router, the amortised accumulator ``extend`` path, the
quarantine flow across shard boundaries, and the CLI flag.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.faults import FaultPlan, corrupt_dump_lines
from repro.records import MemoryRecordSink
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import GNMI_FORMAT, PairAccumulator, ingest_dump
from repro.telemetry.shard import ByteRange, plan_byte_ranges, shard_of_key

INGEST_METRICS = ("Temperature", "Unicast bytes", "FCS errors")


@pytest.fixture(scope="module")
def fleet() -> FleetDataset:
    return FleetDataset(DatasetConfig(pair_count=9, seed=5, trace_duration=7200.0,
                                      metrics=INGEST_METRICS))


@pytest.fixture(scope="module")
def gnmi_dump(fleet, tmp_path_factory):
    return fleet.export_gnmi_dump(tmp_path_factory.mktemp("dumps") / "fleet.jsonl")


@pytest.fixture(scope="module")
def snmp_dump(fleet, tmp_path_factory):
    return fleet.export_snmp_dump(tmp_path_factory.mktemp("dumps") / "fleet.csv")


def directory_bytes(directory: Path) -> dict[str, bytes]:
    """Every published file of a fleet directory, keyed by relative path."""
    return {str(path.relative_to(directory)): path.read_bytes()
            for path in sorted(directory.rglob("*")) if path.is_file()}


def assert_byte_identical(serial_dir: Path, sharded_dir: Path) -> None:
    serial = directory_bytes(serial_dir)
    sharded = directory_bytes(sharded_dir)
    assert sorted(serial) == sorted(sharded)
    for name, payload in serial.items():
        assert sharded[name] == payload, f"{name} differs from the serial ingest"


# ----------------------------------------------------------------------
class TestShardOfKey:
    def test_route_is_stable_across_calls_and_processes(self):
        # sha256 of the key bytes, not hash(): the route must not move
        # with PYTHONHASHSEED.  Pin one known value as a regression anchor.
        key = ("Unicast bytes", "device-0007")
        first = shard_of_key(key, 8)
        assert all(shard_of_key(key, 8) == first for _ in range(5))
        assert shard_of_key(key, 1) == 0

    def test_all_shards_reachable_and_in_range(self):
        shards = 7
        seen = set()
        for index in range(200):
            route = shard_of_key(("ifInOctets", f"device-{index:04d}"), shards)
            assert 0 <= route < shards
            seen.add(route)
        assert seen == set(range(shards))

    def test_separator_prevents_key_aliasing(self):
        # ("ab", "c") and ("a", "bc") concatenate identically; the 0x1f
        # separator keeps their routes independent (distinct at a modulus
        # where a collision would be a 1-in-2^62 accident).
        assert shard_of_key(("ab", "c"), 2 ** 62) != \
            shard_of_key(("a", "bc"), 2 ** 62)

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            shard_of_key(("m", "d"), 0)


class TestPlanByteRanges:
    def test_ranges_tile_the_file_on_line_boundaries(self, gnmi_dump):
        size = gnmi_dump.stat().st_size
        raw = gnmi_dump.read_bytes()
        for parts in (1, 2, 3, 7):
            ranges = plan_byte_ranges(gnmi_dump, parts)
            assert ranges[0].start == 0
            assert ranges[-1].end == size
            for left, right in zip(ranges, ranges[1:]):
                assert left.end == right.start
                assert raw[left.end - 1:left.end] == b"\n"

    def test_first_line_numbers_are_absolute(self, gnmi_dump):
        ranges = plan_byte_ranges(gnmi_dump, 4)
        raw = gnmi_dump.read_bytes()
        for byte_range in ranges:
            lines_before = raw[:byte_range.start].count(b"\n")
            assert byte_range.first_line == lines_before + 1

    def test_data_start_offsets_lines_for_a_header(self, snmp_dump):
        raw = snmp_dump.read_bytes()
        header_end = raw.index(b"\n") + 1
        ranges = plan_byte_ranges(snmp_dump, 3, data_start=header_end,
                                  first_line=2)
        assert ranges[0] == ByteRange(header_end, ranges[0].end, 2)
        assert ranges[-1].end == snmp_dump.stat().st_size
        covered = sum(r.end - r.start for r in ranges)
        assert covered == snmp_dump.stat().st_size - header_end

    def test_more_parts_than_lines_collapses_cleanly(self, tmp_path):
        tiny = tmp_path / "tiny.jsonl"
        tiny.write_bytes(b"a\nb\n")
        ranges = plan_byte_ranges(tiny, 16)
        assert [(r.start, r.end) for r in ranges] == [(0, 2), (2, 4)]
        assert [r.first_line for r in ranges] == [1, 2]


# ----------------------------------------------------------------------
class TestShardedByteIdentity:
    """The headline property: workers is invisible in the published bytes."""

    def _mutations(self, dump: Path, tmp_path: Path,
                   keep_header: bool) -> list[Path]:
        lines = dump.read_text().splitlines(keepends=True)
        header, body = (lines[:1], lines[1:]) if keep_header else ([], lines)
        shuffled = list(body)
        random.Random(13).shuffle(shuffled)
        duplicated = body + body[:: 3]
        variants = {"clean": body, "shuffled": shuffled,
                    "reversed": list(reversed(body)), "duplicated": duplicated}
        paths = []
        for name, variant in variants.items():
            path = tmp_path / f"{name}{dump.suffix}"
            path.write_text("".join(header + variant))
            paths.append(path)
        return paths

    @pytest.mark.parametrize("dump_fixture,keep_header",
                             [("gnmi_dump", False), ("snmp_dump", True)])
    def test_sharded_output_identical_to_serial(self, request, dump_fixture,
                                                keep_header, tmp_path):
        dump = request.getfixturevalue(dump_fixture)
        for variant in self._mutations(dump, tmp_path, keep_header):
            serial_dir = tmp_path / f"{variant.stem}-w1"
            ingest_dump(variant, serial_dir, memory_budget_samples=256)
            for workers in (2, 4):
                sharded_dir = tmp_path / f"{variant.stem}-w{workers}"
                ingested = ingest_dump(variant, sharded_dir,
                                       memory_budget_samples=256,
                                       workers=workers)
                assert_byte_identical(serial_dir, sharded_dir)
                stats = ingested.ingest_stats
                assert stats is not None and stats.workers == workers
                assert len(stats.shards) == workers
                for shard in stats.shards:
                    assert (shard.peak_buffered_samples
                            <= shard.memory_budget_samples)

    def test_no_scratch_left_behind(self, gnmi_dump, tmp_path):
        ingest_dump(gnmi_dump, tmp_path / "fleet", workers=3)
        leftovers = [p for p in (tmp_path / "fleet").rglob("*")
                     if ".ingest-" in p.name]
        assert leftovers == []

    def test_workers_must_be_positive(self, gnmi_dump, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ingest_dump(gnmi_dump, tmp_path / "fleet", workers=0)

    def test_more_workers_than_updates(self, tmp_path):
        # Degenerate split: fewer lines than workers must still publish
        # the same bytes as serial, not crash on empty ranges.
        fleet = FleetDataset(DatasetConfig(pair_count=2, seed=3,
                                           trace_duration=600.0,
                                           metrics=INGEST_METRICS[:1]))
        dump = fleet.export_gnmi_dump(tmp_path / "small.jsonl")
        ingest_dump(dump, tmp_path / "serial")
        ingest_dump(dump, tmp_path / "wide", workers=8)
        assert_byte_identical(tmp_path / "serial", tmp_path / "wide")


class TestShardedQuarantine:
    def test_quarantined_lines_identical_across_worker_counts(
            self, gnmi_dump, tmp_path):
        plan = FaultPlan(malformed_line_every=41)
        dirty = tmp_path / "dirty.jsonl"
        mangled = corrupt_dump_lines(gnmi_dump, dirty, plan)
        assert mangled
        manifests = {}
        for workers in (1, 2, 4):
            sink = MemoryRecordSink()
            out_dir = tmp_path / f"fleet-w{workers}"
            ingest_dump(dirty, out_dir, fmt=GNMI_FORMAT, workers=workers,
                        on_error="quarantine", failure_sink=sink)
            failures = [f for block in sink.blocks() for f in block.failures()]
            # Quarantine provenance must name the absolute dump line no
            # matter which byte range the worker parsed.
            assert sorted(int(f.provenance.rsplit(":", 1)[1])
                          for f in failures) == mangled
            manifests[workers] = (out_dir / "manifest.json").read_bytes()
        assert manifests[2] == manifests[1]
        assert manifests[4] == manifests[1]
        summary = json.loads(manifests[1])["ingest"]
        assert summary["quarantined_lines"] == mangled

    def test_raise_mode_raises_value_error_from_any_shard(
            self, gnmi_dump, tmp_path):
        dirty = tmp_path / "dirty.jsonl"
        corrupt_dump_lines(gnmi_dump, dirty, FaultPlan(malformed_line_every=41))
        with pytest.raises(ValueError, match="dirty.jsonl"):
            ingest_dump(dirty, tmp_path / "fleet", fmt=GNMI_FORMAT, workers=3)
        assert not (tmp_path / "fleet").exists()


# ----------------------------------------------------------------------
class TestAccumulatorExtend:
    def test_extend_matches_add_loop_bit_for_bit(self, tmp_path):
        rng = np.random.default_rng(11)
        keys = [("m", f"d{i}") for i in range(4)]
        chunks = [(key, rng.uniform(0, 3600, size=size),
                   rng.normal(size=size))
                  for key, size in zip(keys * 3, rng.integers(1, 97, size=12))]
        looped = PairAccumulator(tmp_path / "loop", memory_budget_samples=64)
        batched = PairAccumulator(tmp_path / "batch", memory_budget_samples=64)
        for key, times, values in chunks:
            for timestamp, value in zip(times, values):
                looped.add(key, timestamp, value)
            batched.extend(key, times, values)
        assert batched.peak_buffered_samples <= 64
        assert batched.total_samples == looped.total_samples
        assert batched.keys() == looped.keys()
        for key in batched.keys():
            left_t, left_v = looped.samples(key)
            right_t, right_v = batched.samples(key)
            assert np.array_equal(left_t, right_t)
            assert np.array_equal(left_v, right_v)
        looped.close()
        batched.close()

    def test_extend_rejects_mismatched_shapes(self, tmp_path):
        accumulator = PairAccumulator(tmp_path, memory_budget_samples=8)
        with pytest.raises(ValueError, match="equal-length"):
            accumulator.extend(("m", "d"), [1.0, 2.0], [1.0])
        accumulator.close()


# ----------------------------------------------------------------------
class TestShardedCLI:
    def test_workers_flag_round_trips(self, gnmi_dump, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        assert main(["ingest", str(gnmi_dump), str(serial_dir)]) == 0
        capsys.readouterr()
        sharded_dir = tmp_path / "sharded"
        assert main(["ingest", str(gnmi_dump), str(sharded_dir),
                     "--workers", "4"]) == 0
        output = capsys.readouterr().out
        assert "sharded ingest: 4 workers" in output
        assert "Ingested 9 (metric, device) pairs" in output
        assert_byte_identical(serial_dir, sharded_dir)

    def test_workers_flag_rejects_zero(self, gnmi_dump, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["ingest", str(gnmi_dump), str(tmp_path / "fleet"),
                  "--workers", "0"])
