"""Unit tests for irregular-sampling artefact injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.resampling import regularize
from repro.signals.generators import sine
from repro.telemetry.irregular import (add_timing_jitter, drop_samples, duplicate_samples,
                                       make_irregular)


@pytest.fixture
def clean_trace():
    # Slow (8-minute period) signal polled every 10 s: consecutive samples
    # differ little, so nearest-neighbour gap filling stays accurate.
    return sine(0.002, duration=3600.0, sampling_rate=0.1, amplitude=5.0, offset=20.0)


class TestJitter:
    def test_preserves_length_and_order(self, clean_trace, rng):
        jittered = add_timing_jitter(clean_trace, 1.0, rng=rng)
        assert len(jittered) == len(clean_trace)
        assert np.all(np.diff(jittered.timestamps) > 0)

    def test_zero_jitter_keeps_timestamps(self, clean_trace, rng):
        jittered = add_timing_jitter(clean_trace, 0.0, rng=rng)
        np.testing.assert_allclose(jittered.timestamps, clean_trace.times())

    def test_rejects_negative_jitter(self, clean_trace, rng):
        with pytest.raises(ValueError):
            add_timing_jitter(clean_trace, -1.0, rng=rng)


class TestDropAndDuplicate:
    def test_drop_fraction(self, clean_trace, rng):
        irregular = add_timing_jitter(clean_trace, 0.0, rng=rng)
        dropped = drop_samples(irregular, 0.3, rng=rng)
        assert len(dropped) < len(irregular)
        assert dropped.timestamps[0] == irregular.timestamps[0]
        assert dropped.timestamps[-1] == irregular.timestamps[-1]

    def test_drop_zero_is_identity(self, clean_trace, rng):
        irregular = add_timing_jitter(clean_trace, 0.0, rng=rng)
        assert drop_samples(irregular, 0.0, rng=rng) is irregular

    def test_drop_rejects_bad_fraction(self, clean_trace, rng):
        irregular = add_timing_jitter(clean_trace, 0.0, rng=rng)
        with pytest.raises(ValueError):
            drop_samples(irregular, 1.0, rng=rng)

    def test_duplicate_adds_samples(self, clean_trace, rng):
        irregular = add_timing_jitter(clean_trace, 0.0, rng=rng)
        duplicated = duplicate_samples(irregular, 0.2, rng=rng)
        assert len(duplicated) > len(irregular)

    def test_duplicate_rejects_bad_fraction(self, clean_trace, rng):
        irregular = add_timing_jitter(clean_trace, 0.0, rng=rng)
        with pytest.raises(ValueError):
            duplicate_samples(irregular, -0.1, rng=rng)


class TestEndToEndCleaning:
    def test_make_irregular_then_regularize_recovers_signal(self, clean_trace, rng):
        messy = make_irregular(clean_trace, drop_fraction=0.05, duplicate_fraction=0.02, rng=rng)
        assert not messy.is_regular()
        recovered = regularize(messy)
        # Nearest-neighbour cleaning recovers the slow signal to within a
        # small fraction of its amplitude.
        n = min(len(recovered), len(clean_trace))
        error = np.max(np.abs(recovered.values[:n] - clean_trace.values[:n]))
        assert error < 1.5

    def test_nyquist_estimate_robust_to_polling_artifacts(self, clean_trace, rng):
        from repro.core.nyquist import estimate_nyquist_rate
        messy = make_irregular(clean_trace, rng=rng)
        clean_estimate = estimate_nyquist_rate(clean_trace)
        messy_estimate = estimate_nyquist_rate(messy)
        assert messy_estimate.reliable
        assert messy_estimate.nyquist_rate == pytest.approx(clean_estimate.nyquist_rate,
                                                            rel=0.5)
