"""Unit tests for the per-family telemetry generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nyquist import estimate_nyquist_rate
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.models.common import (band_limited_component, broadband_component,
                                           diurnal_component, time_grid)
from repro.telemetry.models.errorcounts import episode_time_constant
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters


def params_for(metric_name, seed=0, broadband=False, bandwidth=None, duration=86400.0):
    spec = METRIC_CATALOG[metric_name]
    device = DeviceProfile(f"dev-{seed}", DeviceRole.TOR_SWITCH, seed=seed)
    params = draw_metric_parameters(spec, device, duration,
                                    broadband_fraction=1.0 if broadband else 0.0,
                                    rng=np.random.default_rng(seed))
    if bandwidth is not None:
        params = type(params)(bandwidth_hz=bandwidth, level=params.level,
                              amplitude=params.amplitude, noise_std=params.noise_std,
                              broadband=params.broadband,
                              burst_rate_per_day=params.burst_rate_per_day, seed=params.seed)
    return spec, params


class TestCommonHelpers:
    def test_time_grid_length(self):
        assert time_grid(100.0, 10.0).shape[0] == 10

    def test_time_grid_rejects_bad_args(self):
        with pytest.raises(ValueError):
            time_grid(0.0, 1.0)

    def test_band_limited_component_stays_in_band(self, rng):
        values = band_limited_component(2048, 1.0, 0.05, 1.0, rng)
        from repro.core.psd import periodogram
        from repro.signals.timeseries import TimeSeries
        spectrum = periodogram(TimeSeries(values, 1.0))
        assert spectrum.energy_fraction_below(0.06) > 0.99

    def test_band_limited_component_peak_amplitude(self, rng):
        values = band_limited_component(1024, 1.0, 0.1, 2.5, rng)
        assert np.max(np.abs(values)) == pytest.approx(2.5, rel=1e-6)

    def test_band_limited_component_with_tiny_band_still_varies(self, rng):
        # Bandwidth below one cycle per trace: at least one bin populated.
        values = band_limited_component(256, 1.0, 1e-9, 1.0, rng)
        assert np.ptp(values) > 0

    def test_broadband_component_zero_amplitude(self, rng):
        assert np.all(broadband_component(64, 0.0, rng) == 0.0)

    def test_diurnal_component_period(self):
        times = np.arange(0, 2 * 86400.0, 600.0)
        values = diurnal_component(times, 5.0)
        assert np.max(values) <= 5.0 * 1.25 + 1e-9
        assert values[0] == pytest.approx(values[len(values) // 2], abs=1e-9)

    def test_episode_time_constant(self):
        assert episode_time_constant(1.0 / (2 * np.pi)) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            episode_time_constant(0.0)


class TestGeneratedTraces:
    @pytest.mark.parametrize("metric_name", list(METRIC_CATALOG))
    def test_every_metric_generates_valid_trace(self, metric_name):
        spec, params = params_for(metric_name, seed=11)
        trace = generate_trace(spec, params, duration=21600.0, rng=np.random.default_rng(11))
        assert len(trace) == int(21600.0 / spec.poll_interval)
        assert np.all(np.isfinite(trace.values))
        if spec.minimum is not None:
            assert trace.min() >= spec.minimum - 1e-9
        if spec.maximum is not None:
            assert trace.max() <= spec.maximum + 1e-9

    @pytest.mark.parametrize("metric_name", list(METRIC_CATALOG))
    def test_values_are_quantized(self, metric_name):
        spec, params = params_for(metric_name, seed=13)
        trace = generate_trace(spec, params, duration=21600.0, rng=np.random.default_rng(13))
        steps = trace.values / spec.quantization_step
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-6)

    def test_generation_is_deterministic(self):
        spec, params = params_for("Link util", seed=17)
        a = generate_trace(spec, params, 21600.0, rng=np.random.default_rng(params.seed))
        b = generate_trace(spec, params, 21600.0, rng=np.random.default_rng(params.seed))
        np.testing.assert_allclose(a.values, b.values)

    def test_custom_interval(self):
        spec, params = params_for("Temperature", seed=19)
        fast = generate_trace(spec, params, 21600.0, interval=60.0,
                              rng=np.random.default_rng(19))
        assert fast.interval == 60.0
        assert len(fast) == 360

    def test_slow_device_is_heavily_oversampled(self):
        spec, params = params_for("Link util", seed=23, bandwidth=3e-5)
        trace = generate_trace(spec, params, 86400.0, rng=np.random.default_rng(23))
        estimate = estimate_nyquist_rate(trace)
        assert estimate.reliable
        assert estimate.reduction_ratio > 30

    def test_fast_device_has_higher_estimate_than_slow(self):
        spec, slow_params = params_for("Link util", seed=29, bandwidth=5e-5)
        _, fast_params = params_for("Link util", seed=29, bandwidth=5e-3)
        slow_trace = generate_trace(spec, slow_params, 86400.0,
                                    rng=np.random.default_rng(29))
        fast_trace = generate_trace(spec, fast_params, 86400.0,
                                    rng=np.random.default_rng(29))
        slow_estimate = estimate_nyquist_rate(slow_trace)
        fast_estimate = estimate_nyquist_rate(fast_trace)
        assert fast_estimate.nyquist_rate > slow_estimate.nyquist_rate * 5

    def test_broadband_trace_has_little_headroom(self):
        spec, params = params_for("Temperature", seed=31, broadband=True)
        trace = generate_trace(spec, params, 86400.0, rng=np.random.default_rng(31))
        estimate = estimate_nyquist_rate(trace)
        assert (not estimate.reliable) or estimate.reduction_ratio < 2.0

    def test_error_counters_are_non_negative(self):
        for seed in range(5):
            spec, params = params_for("FCS errors", seed=seed)
            trace = generate_trace(spec, params, 43200.0, rng=np.random.default_rng(seed))
            assert trace.min() >= 0.0

    def test_device_name_in_trace_name(self):
        spec, params = params_for("Temperature", seed=37)
        trace = generate_trace(spec, params, 21600.0, rng=np.random.default_rng(37),
                               device_name="tor-0001")
        assert "tor-0001" in trace.name
