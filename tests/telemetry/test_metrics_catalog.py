"""Unit tests for the metric catalogue."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (FIGURE4_METRICS, FIGURE5_ORDER, METRIC_CATALOG,
                                     MetricFamily, get_metric, metric_names)


class TestCatalog:
    def test_fourteen_metrics(self):
        # The paper's survey covers 14 distinct metrics.
        assert len(METRIC_CATALOG) == 14

    def test_all_families_present(self):
        families = {spec.family for spec in METRIC_CATALOG.values()}
        assert families == set(MetricFamily)

    def test_poll_rates_positive(self):
        for spec in METRIC_CATALOG.values():
            assert spec.poll_interval > 0
            assert spec.poll_rate == pytest.approx(1.0 / spec.poll_interval)

    def test_quantization_steps_positive(self):
        for spec in METRIC_CATALOG.values():
            assert spec.quantization_step > 0

    def test_bounded_metrics_have_consistent_bounds(self):
        for spec in METRIC_CATALOG.values():
            if spec.minimum is not None and spec.maximum is not None:
                assert spec.maximum > spec.minimum

    def test_percentages_bounded_to_100(self):
        for name in ("5-pct CPU util", "Memory usage", "Link util"):
            assert METRIC_CATALOG[name].maximum == 100.0

    def test_figure5_order_covers_all_metrics(self):
        assert set(FIGURE5_ORDER) == set(METRIC_CATALOG)
        assert len(FIGURE5_ORDER) == 14

    def test_figure4_metrics_are_a_subset(self):
        assert set(FIGURE4_METRICS) <= set(METRIC_CATALOG)
        assert len(FIGURE4_METRICS) == 12

    def test_metric_names_helper(self):
        assert sorted(metric_names()) == sorted(METRIC_CATALOG)

    def test_get_metric(self):
        assert get_metric("Temperature").units == "degC"
        with pytest.raises(KeyError):
            get_metric("Does not exist")

    def test_temperature_polled_every_five_minutes(self):
        # Figure 6 of the paper: the production temperature signal is
        # "sampled every 5 minutes".
        assert METRIC_CATALOG["Temperature"].poll_interval == 300.0
