"""The streaming gNMI/SNMP importer: round trips, corruption, bounded memory.

Three layers of guarantees are pinned here:

* **Round trip** -- a synthetic fleet exported as a raw dump (either wire
  format) and re-ingested surveys bit-identically to the in-memory fleet
  (per (metric, device) pair; ingested directories list pairs in
  canonical sorted order), at any worker count.
* **Differential corruption** -- structurally harmless mutations of a
  dump (shuffled line order, duplicated updates, reversed/ non-monotonic
  streams, unknown metric paths riding along) ingest to the *same* fleet
  as the clean dump, while malformed records are rejected with a
  ``ValueError`` naming the file and line.
* **Bounded memory** -- the :class:`PairAccumulator` never buffers more
  than its budget, spills make it to disk and back losslessly, and the
  spilled result is identical to an unbounded ingest.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.analysis.survey import run_survey
from repro.faults import FaultPlan, corrupt_dump_lines
from repro.records import (FailureRecord, FailureRecordBlock,
                           MemoryRecordSink)
from repro.cli import main
from repro.telemetry.dataset import DatasetConfig, FleetDataset
from repro.telemetry.ingest import (GNMI_FORMAT, METRIC_PATHS,
                                    SNMP_FORMAT, PairAccumulator, ingest_dump,
                                    metric_from_path, open_export, sniff_format)
from repro.telemetry.measured import MeasuredFleetDataset

#: Small, fast fleet shared by the suite: three families (gauge, counter,
#: sparse error bursts), two hours per trace.
INGEST_METRICS = ("Temperature", "Unicast bytes", "FCS errors")


@pytest.fixture(scope="module")
def fleet() -> FleetDataset:
    return FleetDataset(DatasetConfig(pair_count=9, seed=5, trace_duration=7200.0,
                                      metrics=INGEST_METRICS))


@pytest.fixture(scope="module")
def gnmi_dump(fleet, tmp_path_factory):
    return fleet.export_gnmi_dump(tmp_path_factory.mktemp("dumps") / "fleet.jsonl")


@pytest.fixture(scope="module")
def snmp_dump(fleet, tmp_path_factory):
    return fleet.export_snmp_dump(tmp_path_factory.mktemp("dumps") / "fleet.csv")


def assert_same_fleet(a: MeasuredFleetDataset, b: MeasuredFleetDataset,
                      ignore_stats: bool = True) -> None:
    """Two ingested directories hold identical fleets (traces bit for bit)."""
    manifest_a = json.loads((a.directory / "manifest.json").read_text())
    manifest_b = json.loads((b.directory / "manifest.json").read_text())
    if ignore_stats:
        # The accumulator counters (peak, spill writes) legitimately depend
        # on stream order; the fleet content must not.
        for manifest in (manifest_a, manifest_b):
            manifest.pop("ingest", None)
            for entry in manifest["pairs"]:
                entry.pop("ingest", None)
    assert manifest_a == manifest_b
    for pair_a, pair_b in zip(a.pairs(), b.pairs()):
        trace_a, trace_b = a.load(pair_a), b.load(pair_b)
        assert trace_a.interval == trace_b.interval
        assert trace_a.start_time == trace_b.start_time
        assert np.array_equal(trace_a.values, trace_b.values)


def assert_surveys_match(reference, ingested) -> None:
    """Ingested records equal the reference's bit for bit, keyed by pair.

    Ingested fleets list pairs in canonical (metric, device) order while a
    synthetic fleet keeps its own seeded order, so records are aligned by
    key; every estimator-derived field must then match exactly
    (``true_nyquist_rate`` is NaN for ingested data -- no ground-truth
    channel in a raw telemetry stream -- and is asserted to be so).
    """
    by_key = {(record.metric_name, record.device_id): record
              for record in reference.records}
    ingested_records = ingested.records
    assert len(ingested_records) == len(by_key)
    for record in ingested_records:
        expected = by_key[(record.metric_name, record.device_id)]
        assert record.current_rate == expected.current_rate
        assert record.nyquist_rate == expected.nyquist_rate
        assert (record.reduction_ratio == expected.reduction_ratio
                or (np.isnan(record.reduction_ratio)
                    and np.isnan(expected.reduction_ratio)))
        assert record.category is expected.category
        assert record.reliable == expected.reliable
        assert record.trace_duration == expected.trace_duration
        assert np.isnan(record.true_nyquist_rate)
    for key, left in reference.headline().items():
        right = ingested.headline()[key]
        assert left == right or (np.isnan(left) and np.isnan(right)), key


# ----------------------------------------------------------------------
class TestOpenExport:
    def test_sniffs_gnmi(self, gnmi_dump):
        assert sniff_format(gnmi_dump) == GNMI_FORMAT
        assert open_export(gnmi_dump).format == GNMI_FORMAT

    def test_sniffs_snmp(self, snmp_dump):
        assert sniff_format(snmp_dump) == SNMP_FORMAT
        assert open_export(snmp_dump).format == SNMP_FORMAT

    def test_explicit_format_wins(self, gnmi_dump):
        assert open_export(gnmi_dump, GNMI_FORMAT).format == GNMI_FORMAT

    def test_unknown_format_rejected(self, gnmi_dump):
        with pytest.raises(ValueError, match="unknown export format"):
            open_export(gnmi_dump, "netflow")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            open_export(tmp_path / "nope.jsonl")
        with pytest.raises(ValueError, match="cannot read"):
            open_export(tmp_path / "nope.jsonl", GNMI_FORMAT)

    def test_unrecognised_content_rejected(self, tmp_path):
        path = tmp_path / "what.txt"
        path.write_text("hello world\n")
        with pytest.raises(ValueError, match="unrecognised export format"):
            open_export(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            open_export(path)
        # An explicit format must not skip the emptiness check: there is
        # still nothing to ingest, and the error still names the path.
        with pytest.raises(ValueError, match=r"empty\.jsonl.*empty file"):
            open_export(path, GNMI_FORMAT)

    def test_whitespace_only_file_rejected(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text(" \n\t\n   \n")
        with pytest.raises(ValueError, match=r"blank\.csv.*empty file"):
            sniff_format(path)
        with pytest.raises(ValueError, match="whitespace only"):
            open_export(path, SNMP_FORMAT)

    def test_catalogue_paths_round_trip(self):
        for name, token in METRIC_PATHS.items():
            assert metric_from_path(token) == name
        assert metric_from_path("/vendor/x/mystery") == "/vendor/x/mystery"


# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("dump_fixture", ["gnmi_dump", "snmp_dump"])
    def test_ingested_fleet_surveys_bit_identically(self, request, fleet,
                                                    dump_fixture, tmp_path):
        dump = request.getfixturevalue(dump_fixture)
        ingested = ingest_dump(dump, tmp_path / "fleet")
        assert len(ingested) == len(fleet)
        assert sorted(ingested.metric_names()) == sorted(INGEST_METRICS)
        assert_surveys_match(run_survey(fleet), run_survey(ingested))

    def test_worker_counts_agree_byte_for_byte(self, gnmi_dump, tmp_path):
        ingested = ingest_dump(gnmi_dump, tmp_path / "fleet")
        single = run_survey(ingested, chunk_size=4)
        pooled = run_survey(ingested, workers=2, chunk_size=4)
        blocks = list(single.iter_blocks())
        pooled_blocks = list(pooled.iter_blocks())
        assert len(blocks) == len(pooled_blocks) > 0
        for a, b in zip(blocks, pooled_blocks):
            assert a.metric_name == b.metric_name
            assert np.array_equal(a.device_ids, b.device_ids)
            assert np.array_equal(a.nyquist_rate, b.nyquist_rate)
            assert np.array_equal(a.reduction_ratio, b.reduction_ratio, equal_nan=True)
            assert np.array_equal(a.category, b.category)

    def test_manifest_records_provenance(self, gnmi_dump, tmp_path):
        ingest_dump(gnmi_dump, tmp_path / "fleet")
        manifest = json.loads((tmp_path / "fleet" / "manifest.json").read_text())
        summary = manifest["ingest"]
        assert summary["format"] == GNMI_FORMAT
        assert summary["updates"] == sum(1 for _ in gnmi_dump.open())
        assert summary["pairs_skipped"] == []
        for entry in manifest["pairs"]:
            stats = entry["ingest"]
            assert stats["raw_samples"] == stats["samples"]
            assert stats["duplicates_dropped"] == 0
            assert stats["jitter_rms_fraction"] == 0.0
            assert stats["resampled"] is False
            assert stats["dominant_interval"] == entry["interval"]
        # Pairs are listed in canonical sorted order, grouped per metric.
        keys = [(entry["metric"], entry["device"]) for entry in manifest["pairs"]]
        assert keys == sorted(keys)

    def test_used_directory_rejected(self, gnmi_dump, tmp_path):
        ingest_dump(gnmi_dump, tmp_path / "fleet")
        with pytest.raises(ValueError, match="already holds a measured fleet"):
            ingest_dump(gnmi_dump, tmp_path / "fleet")

    def test_file_destination_rejected(self, gnmi_dump, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(ValueError, match="not a directory"):
            ingest_dump(gnmi_dump, target)
        assert target.read_text() == "not a directory"

    def test_failed_ingest_removes_created_directory(self, tmp_path):
        dump = tmp_path / "bad.jsonl"
        dump.write_text('{"timestamp": 0.0, "device": "d", "path": "/x", '
                        '"value": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            ingest_dump(dump, tmp_path / "fleet")
        assert not (tmp_path / "fleet").exists()

    def test_leading_blank_lines_are_tolerated(self, gnmi_dump, snmp_dump, tmp_path):
        # A sniffable file must be ingestible: both readers skip leading
        # blank lines instead of treating them as the first record.
        padded_gnmi = tmp_path / "padded.jsonl"
        padded_gnmi.write_text("\n" + gnmi_dump.read_text())
        padded_snmp = tmp_path / "padded.csv"
        padded_snmp.write_text("\n" + snmp_dump.read_text())
        assert len(ingest_dump(padded_gnmi, tmp_path / "g")) == 9
        assert len(ingest_dump(padded_snmp, tmp_path / "s")) == 9

    def test_csv_trace_format_round_trips(self, fleet, gnmi_dump, tmp_path):
        ingested = ingest_dump(gnmi_dump, tmp_path / "fleet", trace_format="csv")
        assert ingested.fmt == "csv"
        assert_surveys_match(run_survey(fleet), run_survey(ingested))


# ----------------------------------------------------------------------
class TestBoundedMemory:
    def test_budget_bounds_peak_and_result_is_identical(self, gnmi_dump, tmp_path):
        bounded = ingest_dump(gnmi_dump, tmp_path / "bounded",
                              memory_budget_samples=128)
        unbounded = ingest_dump(gnmi_dump, tmp_path / "unbounded")
        summary = json.loads(
            (tmp_path / "bounded" / "manifest.json").read_text())["ingest"]
        assert summary["memory_budget_samples"] == 128
        # Run-dependent counters live on the returned dataset's stats, not
        # in the manifest (whose bytes depend only on the update set).
        stats = bounded.ingest_stats
        assert stats.workers == 1 and stats.shards == ()
        assert stats.memory_budget_samples == 128
        assert 0 < stats.peak_buffered_samples <= 128
        assert stats.spilled_samples > 0 and stats.spill_writes > 0
        assert "peak_buffered_samples" not in summary
        assert_same_fleet(bounded, unbounded)

    def test_scratch_files_are_cleaned_up(self, gnmi_dump, tmp_path):
        ingest_dump(gnmi_dump, tmp_path / "fleet", memory_budget_samples=64)
        assert not (tmp_path / "fleet" / ".ingest-scratch").exists()

    def test_accumulator_spills_largest_buffers_first(self, tmp_path):
        accumulator = PairAccumulator(tmp_path / "scratch", memory_budget_samples=10)
        for index in range(8):
            accumulator.add(("m", "big"), float(index), 1.0)
        accumulator.add(("m", "small"), 0.0, 2.0)
        accumulator.add(("m", "small"), 1.0, 3.0)  # hits the budget -> spill
        assert accumulator.buffered_samples <= 5
        assert accumulator.spilled_samples >= 8
        times, values = accumulator.samples(("m", "big"))
        assert np.array_equal(times, np.arange(8.0))
        times, values = accumulator.samples(("m", "small"))
        assert np.array_equal(values, [2.0, 3.0])
        accumulator.close()
        assert not (tmp_path / "scratch").exists()

    def test_accumulator_rejects_tiny_budget(self, tmp_path):
        with pytest.raises(ValueError, match="memory_budget_samples"):
            PairAccumulator(tmp_path / "scratch", memory_budget_samples=1)


# ----------------------------------------------------------------------
class TestDifferentialCorruption:
    """Each mutation either ingests identically to the clean dump or is
    rejected with a ``ValueError`` naming the file and line."""

    @pytest.fixture()
    def clean(self, gnmi_dump, tmp_path):
        return ingest_dump(gnmi_dump, tmp_path / "clean")

    def test_shuffled_interleaving_changes_nothing(self, gnmi_dump, clean, tmp_path):
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        random.Random(13).shuffle(lines)
        shuffled = tmp_path / "shuffled.jsonl"
        shuffled.write_text("".join(lines))
        # Shuffle with a small budget so spill order differs too.
        ingested = ingest_dump(shuffled, tmp_path / "fleet",
                               memory_budget_samples=96)
        assert_same_fleet(clean, ingested)

    def test_reversed_stream_changes_nothing(self, gnmi_dump, clean, tmp_path):
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        reversed_dump = tmp_path / "reversed.jsonl"
        reversed_dump.write_text("".join(reversed(lines)))
        ingested = ingest_dump(reversed_dump, tmp_path / "fleet")
        assert_same_fleet(clean, ingested)

    def test_duplicated_updates_are_dropped(self, gnmi_dump, clean, tmp_path):
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        duplicated = lines + random.Random(7).sample(lines, len(lines) // 10)
        dump = tmp_path / "duplicated.jsonl"
        dump.write_text("".join(duplicated))
        ingested = ingest_dump(dump, tmp_path / "fleet")
        assert_same_fleet(clean, ingested)
        manifest = json.loads((tmp_path / "fleet" / "manifest.json").read_text())
        assert sum(entry["ingest"]["duplicates_dropped"]
                   for entry in manifest["pairs"]) == len(lines) // 10

    def test_conflicting_duplicate_timestamps_resolve_by_content(self, gnmi_dump,
                                                                 tmp_path):
        # A retried poll can report a *different* value at the same
        # timestamp; the importer keeps the smallest value of each distinct
        # timestamp, so the outcome depends only on the update set -- the
        # conflict-carrying dump ingests identically however its lines are
        # ordered.
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        update = json.loads(lines[0])
        original = update["value"]
        update["value"] = original + 1000.0
        conflicted = lines + [json.dumps(update) + "\n"]
        dump = tmp_path / "conflict.jsonl"
        dump.write_text("".join(conflicted))
        random.Random(5).shuffle(conflicted)
        shuffled = tmp_path / "conflict-shuffled.jsonl"
        shuffled.write_text("".join(conflicted))
        first = ingest_dump(dump, tmp_path / "first")
        again = ingest_dump(shuffled, tmp_path / "again")
        assert_same_fleet(first, again)
        # The smaller of the two conflicting values won, in both orders.
        key = (metric_from_path(update["path"]), update["device"])
        pair = next(p for p in first.pairs() if p.key == key)
        assert first.load(pair).values[0] == min(original, update["value"])

    def test_unknown_metric_paths_ride_along(self, gnmi_dump, clean, tmp_path):
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        extra = [json.dumps({"timestamp": 60.0 * index, "device": "vendor-box-1",
                             "path": "/vendor/x/mystery-counter", "value": float(index)})
                 + "\n" for index in range(16)]
        dump = tmp_path / "extra.jsonl"
        dump.write_text("".join(lines + extra))
        ingested = ingest_dump(dump, tmp_path / "fleet")
        assert "/vendor/x/mystery-counter" in ingested.metric_names()
        extra_pairs = ingested.pairs_for_metric("/vendor/x/mystery-counter")
        assert [pair.device.device_id for pair in extra_pairs] == ["vendor-box-1"]
        assert extra_pairs[0].interval == 60.0
        # The known pairs are untouched by the stranger riding along.
        known = {pair.key for pair in clean.pairs()}
        for pair in ingested.pairs():
            if pair.key in known:
                reference = next(p for p in clean.pairs() if p.key == pair.key)
                assert np.array_equal(ingested.load(pair).values,
                                      clean.load(reference).values)
        # And the unknown metric surveys through the generic gauge spec.
        result = run_survey(ingested, metrics=["/vendor/x/mystery-counter"])
        assert len(result) == 1

    def test_jittered_timestamps_are_regularised(self, fleet, gnmi_dump, tmp_path):
        # Perturb every timestamp by up to 10 % of the interval: the trace
        # must come back on the dominant-interval grid, flagged as
        # re-sampled, with the jitter visible in the manifest stats.
        rng = random.Random(3)
        mutated = []
        for line in gnmi_dump.read_text().splitlines():
            update = json.loads(line)
            if update["path"] == METRIC_PATHS["Temperature"]:
                update["timestamp"] += rng.uniform(-30.0, 30.0)
            mutated.append(json.dumps(update) + "\n")
        dump = tmp_path / "jittered.jsonl"
        dump.write_text("".join(mutated))
        ingested = ingest_dump(dump, tmp_path / "fleet")
        manifest = json.loads((tmp_path / "fleet" / "manifest.json").read_text())
        for entry in manifest["pairs"]:
            stats = entry["ingest"]
            if entry["metric"] == "Temperature":
                assert stats["resampled"] is True
                assert stats["jitter_rms_fraction"] > 0.0
                assert entry["interval"] == pytest.approx(300.0, rel=0.05)
            else:
                assert stats["resampled"] is False
        # Jitter below half an interval: nearest-neighbour regularisation
        # recovers nearly every sample value.
        result = run_survey(ingested)
        assert len(result) == len(fleet)

    # ------------------------- rejected inputs -------------------------
    def test_truncated_line_names_file_and_line(self, gnmi_dump, tmp_path):
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        dump = tmp_path / "truncated.jsonl"
        dump.write_text("".join(lines) + lines[0][: len(lines[0]) // 2])
        with pytest.raises(ValueError,
                           match=rf"truncated\.jsonl, line {len(lines) + 1}"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_missing_field_names_file_and_line(self, tmp_path):
        dump = tmp_path / "missing.jsonl"
        dump.write_text('{"timestamp": 0.0, "device": "d", "value": 1.0}\n')
        with pytest.raises(ValueError, match=r"missing\.jsonl, line 1.*\['path'\]"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_non_numeric_value_names_file_and_line(self, tmp_path):
        dump = tmp_path / "bad.jsonl"
        dump.write_text(
            '{"timestamp": 0.0, "device": "d", "path": "/x", "value": 1.0}\n'
            '{"timestamp": 30.0, "device": "d", "path": "/x", "value": "high"}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl, line 2.*'value'"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_non_finite_timestamp_names_file_and_line(self, tmp_path):
        dump = tmp_path / "inf.jsonl"
        dump.write_text('{"timestamp": Infinity, "device": "d", "path": "/x", '
                        '"value": 1.0}\n')
        with pytest.raises(ValueError, match=r"inf\.jsonl, line 1.*finite"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_snmp_short_row_names_file_and_line(self, snmp_dump, tmp_path):
        lines = snmp_dump.read_text().splitlines(keepends=True)
        cells = lines[1].rstrip("\r\n").split(",")
        lines[1] = ",".join(cells[:-2]) + "\n"
        dump = tmp_path / "short.csv"
        dump.write_text("".join(lines))
        with pytest.raises(ValueError, match=r"short\.csv, line 2.*columns"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_snmp_bad_cell_names_file_line_and_column(self, snmp_dump, tmp_path):
        lines = snmp_dump.read_text().splitlines(keepends=True)
        header = lines[0].rstrip("\r\n").split(",")
        cells = lines[3].rstrip("\r\n").split(",")
        column = next(index for index, cell in enumerate(cells[2:], start=2) if cell)
        cells[column] = "3.1.4.1"
        lines[3] = ",".join(cells) + "\n"
        dump = tmp_path / "bad.csv"
        dump.write_text("".join(lines))
        metric = metric_from_path(header[column])
        with pytest.raises(ValueError, match=rf"bad\.csv, line 4.*{metric!r}"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_snmp_bad_header_rejected(self, tmp_path):
        dump = tmp_path / "head.csv"
        dump.write_text("time,node,oid\n0,server,1\n")
        with pytest.raises(ValueError, match=r"head\.csv.*unrecognised|head\.csv, line 1"):
            ingest_dump(dump, tmp_path / "fleet", fmt=SNMP_FORMAT)

    def test_snmp_duplicate_column_rejected(self, tmp_path):
        dump = tmp_path / "dupe.csv"
        dump.write_text("timestamp,device,/x,/x\n")
        with pytest.raises(ValueError, match=r"dupe\.csv, line 1.*duplicate"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_empty_dump_rejected(self, tmp_path):
        dump = tmp_path / "void.csv"
        dump.write_text("timestamp,device,/x\n")
        with pytest.raises(ValueError, match="no telemetry updates"):
            ingest_dump(dump, tmp_path / "fleet")


# ----------------------------------------------------------------------
class TestMinSamples:
    def test_sparse_pairs_are_skipped_and_recorded(self, tmp_path):
        dump = tmp_path / "sparse.jsonl"
        lines = [json.dumps({"timestamp": 30.0 * index, "device": "rich",
                             "path": "/x", "value": float(index)})
                 for index in range(20)]
        lines.append(json.dumps({"timestamp": 0.0, "device": "poor",
                                 "path": "/x", "value": 1.0}))
        dump.write_text("\n".join(lines) + "\n")
        ingested = ingest_dump(dump, tmp_path / "fleet")
        assert [pair.device.device_id for pair in ingested.pairs()] == ["rich"]
        summary = json.loads((tmp_path / "fleet" / "manifest.json").read_text())["ingest"]
        assert len(summary["pairs_skipped"]) == 1
        assert summary["pairs_skipped"][0]["device"] == "poor"

    def test_min_samples_knob_raises_the_bar(self, gnmi_dump, tmp_path):
        ingested = ingest_dump(gnmi_dump, tmp_path / "fleet", min_samples=30)
        summary = json.loads((tmp_path / "fleet" / "manifest.json").read_text())["ingest"]
        # The 2-hour Temperature pairs only have 24 samples at 300 s.
        assert len(summary["pairs_skipped"]) == 3
        assert all(entry["metric"] == "Temperature"
                   for entry in summary["pairs_skipped"])
        assert "Temperature" not in ingested.metric_names()

    def test_all_pairs_skipped_is_an_error(self, tmp_path):
        dump = tmp_path / "thin.jsonl"
        dump.write_text('{"timestamp": 0.0, "device": "d", "path": "/x", "value": 1.0}\n')
        with pytest.raises(ValueError, match="min_samples"):
            ingest_dump(dump, tmp_path / "fleet")

    def test_min_samples_below_two_rejected(self, gnmi_dump, tmp_path):
        with pytest.raises(ValueError, match="min_samples must be >= 2"):
            ingest_dump(gnmi_dump, tmp_path / "fleet", min_samples=1)


# ----------------------------------------------------------------------
class TestIngestCLI:
    def test_export_dump_ingest_survey_pipeline(self, tmp_path, capsys):
        dump = tmp_path / "dump.jsonl"
        assert main(["export-dump", str(dump), "--pairs", "6", "--seed", "3",
                     "--duration-hours", "1"]) == 0
        assert main(["ingest", str(dump), str(tmp_path / "fleet"),
                     "--memory-budget", "64"]) == 0
        output = capsys.readouterr().out
        assert "Ingested 6 (metric, device) pairs" in output
        assert "spilled to scratch" in output
        assert main(["survey", "--from-dir", str(tmp_path / "fleet")]) == 0
        assert "Headline statistics" in capsys.readouterr().out

    def test_snmp_export_dump_round_trips(self, tmp_path, capsys):
        dump = tmp_path / "dump.csv"
        assert main(["export-dump", str(dump), "--format", "snmp-csv",
                     "--pairs", "6", "--seed", "3", "--duration-hours", "1"]) == 0
        assert main(["ingest", str(dump), str(tmp_path / "fleet")]) == 0
        assert "snmp-csv export" in capsys.readouterr().out

    def test_cli_reports_malformed_dump(self, tmp_path, capsys):
        dump = tmp_path / "bad.jsonl"
        dump.write_text('{"timestamp": 0.0, "device": "d"}\n')
        assert main(["ingest", str(dump), str(tmp_path / "fleet")]) == 1
        err = capsys.readouterr().err
        assert "line 1" in err and "bad.jsonl" in err

    def test_cli_reports_used_directory(self, tmp_path, capsys):
        dump = tmp_path / "dump.jsonl"
        main(["export-dump", str(dump), "--pairs", "3", "--duration-hours", "1"])
        assert main(["ingest", str(dump), str(tmp_path / "fleet")]) == 0
        assert main(["ingest", str(dump), str(tmp_path / "fleet")]) == 1
        assert "already holds a measured fleet" in capsys.readouterr().err


class TestQuarantinedIngest:
    """``on_error="quarantine"`` drops exactly the malformed lines (whole
    SNMP rows), records them with provenance, and leaves every untouched
    update bit-identical to a clean ingest."""

    @pytest.fixture()
    def clean(self, gnmi_dump, tmp_path):
        return ingest_dump(gnmi_dump, tmp_path / "clean")

    def test_rejects_unknown_on_error(self, gnmi_dump, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            ingest_dump(gnmi_dump, tmp_path / "fleet", on_error="shrug")

    def test_rejects_non_empty_failure_sink(self, gnmi_dump, tmp_path):
        sink = MemoryRecordSink()
        sink.append(FailureRecordBlock.from_failures(
            [FailureRecord("", "", "parse", "ValueError", "x", "y:1")]))
        with pytest.raises(ValueError, match="failure_sink already holds"):
            ingest_dump(gnmi_dump, tmp_path / "fleet", on_error="quarantine",
                        failure_sink=sink)

    def test_gnmi_quarantine_accounts_for_every_mangled_line(
            self, gnmi_dump, tmp_path):
        plan = FaultPlan(malformed_line_every=41)
        dirty = tmp_path / "dirty.jsonl"
        mangled = corrupt_dump_lines(gnmi_dump, dirty, plan)
        assert mangled
        sink = MemoryRecordSink()
        ingest_dump(dirty, tmp_path / "fleet", on_error="quarantine",
                    failure_sink=sink)
        failures = [f for block in sink.blocks() for f in block.failures()]
        assert [int(f.provenance.rsplit(":", 1)[1]) for f in failures] == mangled
        assert all(f.stage == "parse" for f in failures)
        assert all(f.provenance.startswith(str(dirty)) for f in failures)
        manifest = json.loads((tmp_path / "fleet" / "manifest.json").read_text())
        assert manifest["ingest"]["quarantined_lines"] == mangled

    def test_gnmi_surviving_updates_bit_identical(self, gnmi_dump, clean,
                                                  tmp_path):
        """Corrupting lines of pairs we then ignore must leave every other
        pair's trace bit-identical to the clean ingest."""
        lines = gnmi_dump.read_text().splitlines(keepends=True)
        victim = json.loads(lines[0])["device"]
        dirty = tmp_path / "dirty.jsonl"
        with dirty.open("w") as handle:
            for line in lines:
                if json.loads(line)["device"] == victim:
                    handle.write("!corrupted! " + line[: len(line) // 2] + "\n")
                else:
                    handle.write(line)
        # Line 1 may belong to the victim: name the format explicitly.
        ingested = ingest_dump(dirty, tmp_path / "fleet", fmt=GNMI_FORMAT,
                               on_error="quarantine")
        for pair in ingested.pairs():
            if pair.key[1] == victim:
                continue
            twin = next(p for p in clean.pairs() if p.key == pair.key)
            assert np.array_equal(ingested.load(pair).values,
                                  clean.load(twin).values)

    def test_snmp_rows_quarantine_atomically(self, snmp_dump, tmp_path):
        """A bad cell poisons its whole row: no partial-row updates leak."""
        lines = snmp_dump.read_text().splitlines(keepends=True)
        cells = lines[2].rstrip("\r\n").split(",")
        column = next(index for index, cell in enumerate(cells[2:], start=2)
                      if cell)
        cells[column] = "not-a-number"
        lines[2] = ",".join(cells) + "\n"
        dump = tmp_path / "bad.csv"
        dump.write_text("".join(lines))
        sink = MemoryRecordSink()
        ingested = ingest_dump(dump, tmp_path / "fleet", on_error="quarantine",
                               failure_sink=sink)
        assert sink.rows == 1
        failure = next(f for block in sink.blocks() for f in block.failures())
        assert failure.provenance == f"{dump}:3"
        # The row's device lost exactly one poll in every polled metric.
        clean = ingest_dump(snmp_dump, tmp_path / "clean")
        device = cells[1]
        for pair in ingested.pairs():
            twin = next(p for p in clean.pairs() if p.key == pair.key)
            lost = len(clean.load(twin)) - len(ingested.load(pair))
            assert lost == (1 if pair.key[1] == device else 0) or lost == 0

    def test_snmp_header_errors_always_raise(self, tmp_path):
        dump = tmp_path / "head.csv"
        dump.write_text("time,node,oid\n0,server,1\n")
        with pytest.raises(ValueError):
            ingest_dump(dump, tmp_path / "fleet", on_error="quarantine")

    def test_raise_mode_unchanged_by_default(self, gnmi_dump, tmp_path):
        plan = FaultPlan(malformed_line_every=41)
        dirty = tmp_path / "dirty.jsonl"
        corrupt_dump_lines(gnmi_dump, dirty, plan)
        with pytest.raises(ValueError, match=r"dirty\.jsonl, line"):
            ingest_dump(dirty, tmp_path / "fleet")


class TestAtomicIngest:
    """Ingest stages into ``<dest>.partial`` and publishes by rename: a
    failed ingest leaves no destination and no staging litter."""

    def test_success_leaves_no_staging_directory(self, gnmi_dump, tmp_path):
        destination = tmp_path / "fleet"
        ingest_dump(gnmi_dump, destination)
        assert destination.is_dir()
        assert not (tmp_path / "fleet.partial").exists()

    def test_failure_leaves_no_destination_or_staging(self, gnmi_dump, tmp_path):
        lines = gnmi_dump.read_text()
        dump = tmp_path / "dirty.jsonl"
        dump.write_text(lines + "!corrupted! not json\n")
        destination = tmp_path / "fleet"
        with pytest.raises(ValueError):
            ingest_dump(dump, destination)
        assert not destination.exists()
        assert not (tmp_path / "fleet.partial").exists()

    def test_stale_staging_from_a_crashed_run_is_replaced(self, gnmi_dump,
                                                          tmp_path):
        stale = tmp_path / "fleet.partial"
        (stale / "traces").mkdir(parents=True)
        (stale / "traces" / "junk.npz").write_bytes(b"junk")
        ingested = ingest_dump(gnmi_dump, tmp_path / "fleet")
        assert not stale.exists()
        assert not any(p.name == "junk.npz"
                       for p in (tmp_path / "fleet" / "traces").iterdir())
        run_survey(ingested)  # publishes a coherent fleet

    def test_published_fleet_identical_to_prior_behaviour(self, gnmi_dump,
                                                          tmp_path):
        a = ingest_dump(gnmi_dump, tmp_path / "a")
        b = ingest_dump(gnmi_dump, tmp_path / "b")
        assert_same_fleet(a, b)
