"""Unit tests for device profiles, parameter draws and fleet construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.fleet import DEFAULT_ROLE_MIX, build_fleet, devices_by_role
from repro.telemetry.metrics import METRIC_CATALOG
from repro.telemetry.profiles import (DeviceProfile, DeviceRole, MetricParameters,
                                      draw_metric_parameters)


class TestDeviceProfile:
    def test_metric_seed_is_deterministic(self):
        device = DeviceProfile("tor-1", DeviceRole.TOR_SWITCH, seed=7)
        assert device.metric_seed("Temperature") == device.metric_seed("Temperature")

    def test_metric_seed_differs_across_metrics(self):
        device = DeviceProfile("tor-1", DeviceRole.TOR_SWITCH, seed=7)
        assert device.metric_seed("Temperature") != device.metric_seed("Link util")


class TestMetricParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetricParameters(bandwidth_hz=0.0, level=1.0, amplitude=1.0, noise_std=0.1,
                             broadband=False, burst_rate_per_day=1.0, seed=0)
        with pytest.raises(ValueError):
            MetricParameters(bandwidth_hz=1.0, level=1.0, amplitude=-1.0, noise_std=0.1,
                             broadband=False, burst_rate_per_day=1.0, seed=0)

    def test_true_nyquist_rate(self):
        params = MetricParameters(bandwidth_hz=0.001, level=1.0, amplitude=1.0,
                                  noise_std=0.0, broadband=False, burst_rate_per_day=1.0,
                                  seed=0)
        assert params.true_nyquist_rate == pytest.approx(0.002)


class TestParameterDraws:
    def test_draw_is_deterministic_in_seed(self):
        spec = METRIC_CATALOG["Link util"]
        device = DeviceProfile("tor-9", DeviceRole.TOR_SWITCH, seed=3)
        first = draw_metric_parameters(spec, device, 86400.0,
                                       rng=np.random.default_rng(device.metric_seed(spec.name)))
        second = draw_metric_parameters(spec, device, 86400.0,
                                        rng=np.random.default_rng(device.metric_seed(spec.name)))
        assert first == second

    def test_bandwidth_below_measurable_band(self):
        spec = METRIC_CATALOG["Link util"]
        for seed in range(30):
            device = DeviceProfile(f"d{seed}", DeviceRole.SERVER, seed=seed)
            params = draw_metric_parameters(spec, device, 86400.0)
            assert 0 < params.bandwidth_hz < spec.poll_rate / 2.0

    def test_broadband_fraction_zero_and_one(self):
        spec = METRIC_CATALOG["Link util"]
        device = DeviceProfile("d", DeviceRole.SERVER, seed=1)
        none = [draw_metric_parameters(spec, device, 86400.0, broadband_fraction=0.0,
                                       rng=np.random.default_rng(i)).broadband
                for i in range(20)]
        every = [draw_metric_parameters(spec, device, 86400.0, broadband_fraction=1.0,
                                        rng=np.random.default_rng(i)).broadband
                 for i in range(20)]
        assert not any(none)
        assert all(every)

    def test_rejects_bad_arguments(self):
        spec = METRIC_CATALOG["Link util"]
        device = DeviceProfile("d", DeviceRole.SERVER, seed=1)
        with pytest.raises(ValueError):
            draw_metric_parameters(spec, device, 0.0)
        with pytest.raises(ValueError):
            draw_metric_parameters(spec, device, 86400.0, broadband_fraction=1.5)

    def test_bandwidths_span_orders_of_magnitude(self):
        # The Figure 5 observation: per-device Nyquist rates vary widely.
        spec = METRIC_CATALOG["5-pct CPU util"]
        bandwidths = []
        for seed in range(200):
            device = DeviceProfile(f"d{seed}", DeviceRole.SERVER, seed=seed)
            bandwidths.append(draw_metric_parameters(spec, device, 86400.0).bandwidth_hz)
        assert max(bandwidths) / min(bandwidths) > 50


class TestFleet:
    def test_size_and_determinism(self):
        fleet_a = build_fleet(50, seed=1)
        fleet_b = build_fleet(50, seed=1)
        assert len(fleet_a) == 50
        assert [d.device_id for d in fleet_a] == [d.device_id for d in fleet_b]

    def test_unique_device_ids(self):
        fleet = build_fleet(100, seed=2)
        assert len({device.device_id for device in fleet}) == 100

    def test_role_mix_roughly_respected(self):
        fleet = build_fleet(400, seed=3)
        servers = devices_by_role(fleet, DeviceRole.SERVER)
        fraction = len(servers) / len(fleet)
        assert abs(fraction - DEFAULT_ROLE_MIX[DeviceRole.SERVER]) < 0.1

    def test_custom_role_mix(self):
        fleet = build_fleet(20, seed=4, role_mix={DeviceRole.CORE_SWITCH: 1.0})
        assert all(device.role is DeviceRole.CORE_SWITCH for device in fleet)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            build_fleet(0)
        with pytest.raises(ValueError):
            build_fleet(5, role_mix={DeviceRole.SERVER: 0.0})
