"""End-to-end integration tests spanning several subsystems."""

from __future__ import annotations

import numpy as np

from repro.analysis.survey import run_survey
from repro.core import (AdaptiveSamplingController, ControllerConfig, compare,
                        estimate_nyquist_rate, nyquist_round_trip, reconstruct)
from repro.core.quantization import UniformQuantizer
from repro.network import (MonitoringDeployment, TelemetryCostAccountant, TopologySpec,
                           attach_collector, build_leaf_spine)
from repro.pipeline import (CostQualityEvaluator, EventKind, FixedRatePolicy,
                            NyquistStaticPolicy, inject_event)
from repro.telemetry import METRIC_CATALOG
from repro.telemetry.models import generate_trace
from repro.telemetry.profiles import DeviceProfile, DeviceRole, draw_metric_parameters


class TestSurveyPipeline:
    def test_survey_reproduces_paper_shape(self, small_dataset):
        """The headline §3.2 claims hold qualitatively on the synthetic fleet."""
        survey = run_survey(small_dataset)
        headline = survey.headline()
        # Most pairs over-sampled (paper: 89%), a small minority suspect (11%).
        assert headline["oversampled_fraction"] >= 0.7
        assert headline["undersampled_or_suspect_fraction"] <= 0.3
        # Order-of-magnitude savings are common.
        assert headline["median_reduction_ratio"] > 5

    def test_figure1_fractions_high_for_most_metrics(self, small_dataset):
        survey = run_survey(small_dataset)
        fractions = list(survey.oversampled_fraction_by_metric().values())
        assert np.median(fractions) >= 0.6


class TestFigure6Workflow:
    def test_temperature_round_trip_recovers_within_quantization(self):
        """Figure 6: down-sample a temperature trace to its Nyquist rate and recover it."""
        spec = METRIC_CATALOG["Temperature"]
        device = DeviceProfile("fig6-device", DeviceRole.TOR_SWITCH, seed=61)
        params = draw_metric_parameters(spec, device, 3 * 86400.0, broadband_fraction=0.0,
                                        rng=np.random.default_rng(61))
        trace = generate_trace(spec, params, 3 * 86400.0, rng=np.random.default_rng(61))
        quantizer = UniformQuantizer(spec.quantization_step, spec.minimum, spec.maximum)
        result = nyquist_round_trip(trace, headroom=2.0, quantizer=quantizer)
        assert result.estimate.reliable
        assert result.reduction_factor > 2
        # The reconstruction is within a few quantisation steps everywhere
        # and nearly indistinguishable on average.
        assert result.error.nrmse < 0.1
        assert result.error.max_abs <= 6 * spec.quantization_step

    def test_adaptive_controller_then_reconstruction(self):
        """§4 workflow: adapt the rate, then reconstruct the full signal."""
        spec = METRIC_CATALOG["Temperature"]
        device = DeviceProfile("adaptive-device", DeviceRole.TOR_SWITCH, seed=62)
        params = draw_metric_parameters(spec, device, 2 * 86400.0, broadband_fraction=0.0,
                                        rng=np.random.default_rng(62))
        reference = generate_trace(spec, params, 2 * 86400.0, interval=spec.poll_interval / 2.0,
                                   rng=np.random.default_rng(62))
        controller = AdaptiveSamplingController(ControllerConfig(
            initial_rate=spec.poll_rate / 4.0, max_rate=reference.sampling_rate))
        run = controller.run(reference, window_duration=6 * 3600.0)
        assert run.total_samples_collected < len(reference)
        reconstruction = reconstruct(run.collected_series(), reference.sampling_rate)
        error = compare(reference, reconstruction)
        assert error.nrmse < 0.35


class TestCostQualityPipeline:
    def test_nyquist_static_saves_cost_with_modest_quality_loss(self):
        topology = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=2, servers_per_leaf=2))
        collector = attach_collector(topology)
        deployment = MonitoringDeployment(topology, trace_duration=21600.0, seed=8)
        accountant = TelemetryCostAccountant(topology=topology, collector=collector)
        evaluator = CostQualityEvaluator(
            [FixedRatePolicy(30.0, name="baseline"), NyquistStaticPolicy(30.0)],
            accountant=accountant)
        rng = np.random.default_rng(8)
        for point, reference in deployment.iter_reference_traces("Link util", limit=4):
            event_time = reference.start_time + float(rng.uniform(0.5, 0.9)) * reference.duration
            modified, event = inject_event(reference, EventKind.STEP, event_time,
                                           magnitude=6.0 * reference.std() + 1.0)
            evaluator.evaluate_point(point.node, "Link util", modified, event)
        relative = evaluator.relative_costs("baseline")
        assert relative["nyquist-static"] < 0.9
        summary = evaluator.summaries["nyquist-static"]
        assert summary.mean_nrmse < 0.5


class TestDatasetToEstimatorConsistency:
    def test_planted_bandwidth_recovered_for_clean_gauges(self):
        """The estimator recovers the generator's planted rate for gauge metrics."""
        spec = METRIC_CATALOG["Link util"]
        recovered = []
        for seed in range(6):
            device = DeviceProfile(f"gauge-{seed}", DeviceRole.TOR_SWITCH, seed=seed)
            params = draw_metric_parameters(spec, device, 86400.0, broadband_fraction=0.0,
                                            rng=np.random.default_rng(seed))
            trace = generate_trace(spec, params, 86400.0, rng=np.random.default_rng(seed))
            estimate = estimate_nyquist_rate(trace)
            if estimate.reliable and params.bandwidth_hz > 2.0 / 86400.0:
                recovered.append(estimate.nyquist_rate / params.true_nyquist_rate)
        assert recovered, "expected at least one clean estimate"
        assert 0.3 <= float(np.median(recovered)) <= 3.0
