"""Aliasing made visible: the paper's Figure 2/3 walk-through.

The illustrative signal of Figure 3 is the superposition of two sine waves
at 400 Hz and 440 Hz (Nyquist rate 880 Hz).  This example samples it above
and below that rate, shows where the spectral peaks land (aliasing moves
them), runs the dual-frequency detector of Section 4.1 on each candidate
rate, and reports the reconstruction error of each sampled version.

Run with:  python examples/aliasing_demo.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import DualRateAliasingDetector, compare, periodogram, reconstruct
from repro.signals.generators import multi_tone, two_tone_figure3

TONES = [400.0, 440.0]


def sample_two_tone(rate: float, duration: float = 1.0):
    """Sample the continuous 400+440 Hz signal at the given rate (no filtering)."""
    return multi_tone(TONES, duration, rate, name=f"two_tone@{rate:g}Hz")


def main() -> None:
    original = two_tone_figure3(duration=1.0, sampling_rate=2000.0)
    print(f"Original signal: 400 Hz + 440 Hz tones, sampled at {original.sampling_rate:g} Hz "
          f"({len(original)} samples); Nyquist rate = 880 Hz")

    detector = DualRateAliasingDetector(rate_ratio=1.6, threshold=0.1)
    rows = []
    for label, rate in [("above Nyquist (Fig 3b)", 890.0),
                        ("slightly below (Fig 3c)", 800.0),
                        ("far below (Fig 3d)", 600.0)]:
        sampled = sample_two_tone(rate)
        spectrum = periodogram(sampled)
        peak = spectrum.without_dc().dominant_frequency()
        # The §4.1 dual-frequency check: poll the signal independently at
        # the candidate rate and at 1.6x that rate, compare the spectra.
        verdict = detector.check_samples(sample_two_tone(rate),
                                         sample_two_tone(rate * detector.rate_ratio))
        reconstruction = reconstruct(sampled, original.sampling_rate)
        error = compare(original, reconstruction)
        rows.append({
            "sampling": label,
            "rate (Hz)": sampled.sampling_rate,
            "strongest peak (Hz)": peak,
            "dual-rate detector says aliased": verdict.aliased,
            "reconstruction NRMSE": error.nrmse,
        })
    print()
    print(format_table(rows))
    print()
    print("Above the Nyquist rate the peaks stay at 400/440 Hz and the signal is "
          "recoverable; below it they fold to new frequencies and reconstruction "
          "error jumps -- exactly the distortion Figure 3 illustrates.")


if __name__ == "__main__":
    main()
