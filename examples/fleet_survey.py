"""Fleet survey: how over-sampled is a datacenter's monitoring today?

Reproduces the Section 3.2 measurement study on synthetic telemetry: build
a fleet dataset of (metric, device) pairs, estimate every pair's Nyquist
rate, and print the data behind Figures 1, 4 and 5 plus the headline
statistics quoted in the paper's text.

Run with:  python examples/fleet_survey.py [--pairs N]
"""

from __future__ import annotations

import argparse

from repro.analysis import ascii_bar_chart, ascii_cdf, box_stats, format_table, run_survey
from repro.telemetry import DatasetConfig, FleetDataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=280,
                        help="number of metric-device pairs (paper: 1613)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backend", choices=["batched", "scalar"], default="batched",
                        help="spectral engine (batched = vectorised fleet-scale path)")
    args = parser.parse_args()

    dataset = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed))
    survey = run_survey(dataset, backend=args.backend)

    print(f"Surveyed {len(survey)} metric-device pairs across {len(survey.metrics())} metrics\n")

    print("=== Figure 1: fraction of devices sampled above the Nyquist rate ===")
    print(ascii_bar_chart(survey.oversampled_fraction_by_metric(), maximum=1.0))

    print("\n=== Figure 4: CDF of the possible sampling-rate reduction (all metrics pooled) ===")
    ratios = survey.reduction_ratios()
    print(ascii_cdf(ratios))
    for threshold in (10, 100, 1000):
        share = float((ratios >= threshold).mean()) if ratios.size else float("nan")
        print(f"  fraction of pairs reducible by >= {threshold}x: {share:.2f}")

    print("\n=== Figure 5: Nyquist rate per metric (Hz) ===")
    rows = []
    for metric in survey.metrics():
        stats = box_stats(survey.nyquist_rates(metric))
        row = {"metric": metric}
        row.update(stats.as_dict())
        rows.append(row)
    print(format_table(rows, ["metric", "min", "p25", "median", "p75", "max", "count"]))

    print("\n=== Headline statistics (Section 3.2) ===")
    print(format_table([{"statistic": key, "value": value}
                        for key, value in survey.headline().items()]))


if __name__ == "__main__":
    main()
