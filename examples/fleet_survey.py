"""Fleet survey: how over-sampled is a datacenter's monitoring today?

Reproduces the Section 3.2 measurement study on synthetic telemetry: build
a fleet dataset of (metric, device) pairs, estimate every pair's Nyquist
rate, and print the data behind Figures 1, 4 and 5 plus the headline
statistics quoted in the paper's text.

Run with:  python examples/fleet_survey.py [--pairs N]

The pipeline scales far beyond the paper's 1613 pairs.  A 25k-pair
out-of-core run -- trace generation and estimation fanned out to worker
processes, per-pair records streamed to npz chunks on disk so memory
stays bounded by --chunk-size -- looks like:

    python examples/fleet_survey.py --pairs 25200 --workers 4 \\
        --chunk-size 512 --spill-dir /tmp/survey-spool

The printed aggregations are identical to an in-memory single-process
run: records are byte-identical across worker counts and the figure
reductions stream block-by-block from the spill directory.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis import (SpillingRecordSink, ascii_bar_chart, ascii_cdf, box_stats,
                            format_table, run_survey)
from repro.telemetry import DatasetConfig, FleetDataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=280,
                        help="number of metric-device pairs (paper: 1613)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backend", choices=["batched", "scalar"], default="batched",
                        help="spectral engine (batched = vectorised fleet-scale path)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for trace generation + estimation")
    parser.add_argument("--chunk-size", type=int, default=1024,
                        help="traces held in memory at once (bounds survey memory)")
    parser.add_argument("--spill-dir", type=Path, default=None,
                        help="stream per-pair record chunks to npz files here "
                             "(out-of-core mode for 100k+-pair fleets)")
    args = parser.parse_args()

    dataset = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed))
    sink = SpillingRecordSink(args.spill_dir) if args.spill_dir is not None else None
    survey = run_survey(dataset, backend=args.backend, workers=args.workers,
                        chunk_size=args.chunk_size, sink=sink)

    print(f"Surveyed {len(survey)} metric-device pairs across {len(survey.metrics())} metrics\n")

    print("=== Figure 1: fraction of devices sampled above the Nyquist rate ===")
    print(ascii_bar_chart(survey.oversampled_fraction_by_metric(), maximum=1.0))

    print("\n=== Figure 4: CDF of the possible sampling-rate reduction (all metrics pooled) ===")
    ratios = survey.reduction_ratios()
    print(ascii_cdf(ratios))
    for threshold in (10, 100, 1000):
        share = float((ratios >= threshold).mean()) if ratios.size else float("nan")
        print(f"  fraction of pairs reducible by >= {threshold}x: {share:.2f}")

    print("\n=== Figure 5: Nyquist rate per metric (Hz) ===")
    rows = []
    for metric in survey.metrics():
        stats = box_stats(survey.nyquist_rates(metric))
        row = {"metric": metric}
        row.update(stats.as_dict())
        rows.append(row)
    print(format_table(rows, ["metric", "min", "p25", "median", "p75", "max", "count"]))

    print("\n=== Headline statistics (Section 3.2) ===")
    print(format_table([{"statistic": key, "value": value}
                        for key, value in survey.headline().items()]))

    if sink is not None:
        print(f"\nRecord chunks spilled to {args.spill_dir} ({len(sink.files)} npz files); "
              f"re-open later with SurveyResult(sink=SpillingRecordSink({str(args.spill_dir)!r}))")


if __name__ == "__main__":
    main()
