"""Ingesting raw monitoring exports: from a telemetry dump to survey figures.

Production monitoring archives are not tidy per-pair trace directories --
they are *streams*: gNMI collectors append one JSON update per line with
every (metric, device) pair interleaved, and SNMP pollers tabulate wide
per-poll CSV rows.  This example walks the full ingestion loop on a dump
you can fabricate anywhere:

1. build a synthetic fleet and export it as a **raw dump** in either wire
   format (``--wire gnmi-jsonl`` or ``--wire snmp-csv``) -- the stand-in
   for a real monitoring export;
2. **ingest** the dump with a deliberately small ``--memory-budget``, so
   the bounded-memory path (per-pair spill scratch files) is visibly
   exercised, into a measured-fleet directory;
3. survey both the original fleet and the ingested directory and verify
   the records are **bit-identical** pair for pair (ingested fleets carry
   no ground-truth rates and list pairs in canonical order; everything
   the estimator produces must match exactly).

Run with:  python examples/ingest_survey.py [--pairs N] [--wire FORMAT]

To ingest your own exports, skip the fabrication and use the CLI:
``repro-monitor ingest DUMP FLEET_DIR`` then ``repro-monitor survey
--from-dir FLEET_DIR`` (or ``repro-monitor policies --from-dir``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table, run_survey
from repro.telemetry import (DatasetConfig, FleetDataset, GNMI_FORMAT, SNMP_FORMAT,
                             ingest_dump)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=112,
                        help="number of metric-device pairs to fabricate")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration-hours", type=float, default=6.0,
                        help="hours of telemetry per pair")
    parser.add_argument("--wire", choices=[GNMI_FORMAT, SNMP_FORMAT],
                        default=GNMI_FORMAT, help="dump wire format to fabricate")
    parser.add_argument("--memory-budget", type=int, default=8192,
                        help="accumulator budget in samples (16 bytes each); small "
                             "by default so the spill path runs")
    parser.add_argument("--workers", type=int, default=2,
                        help="survey worker processes for the ingested run")
    args = parser.parse_args()

    work_dir = Path(tempfile.mkdtemp(prefix="ingest-survey-"))
    fleet = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed,
                                       trace_duration=args.duration_hours * 3600.0))

    suffix = "jsonl" if args.wire == GNMI_FORMAT else "csv"
    dump = work_dir / f"export.{suffix}"
    print(f"Fabricating a {args.wire} dump from {args.pairs} pairs "
          f"({args.duration_hours:g} h each)...")
    start = time.perf_counter()
    if args.wire == GNMI_FORMAT:
        fleet.export_gnmi_dump(dump)
    else:
        fleet.export_snmp_dump(dump)
    with dump.open() as handle:
        lines = sum(1 for _ in handle)
    print(f"  {dump}: {lines} lines ({dump.stat().st_size / 2 ** 20:.1f} MiB) "
          f"in {time.perf_counter() - start:.2f}s\n")

    fleet_dir = work_dir / "fleet"
    print(f"Ingesting with a {args.memory_budget}-sample budget "
          f"(~{args.memory_budget * 16 / 2 ** 10:.0f} KiB of buffered samples)...")
    start = time.perf_counter()
    ingested = ingest_dump(dump, fleet_dir, memory_budget_samples=args.memory_budget)
    ingest_seconds = time.perf_counter() - start
    summary = json.loads((fleet_dir / "manifest.json").read_text())["ingest"]
    stats = ingested.ingest_stats  # run counters live on the dataset, not the manifest
    print(format_table([{
        "updates": summary["updates"],
        "lines_per_second": lines / ingest_seconds,
        "peak_buffered": stats.peak_buffered_samples,
        "budget": stats.memory_budget_samples,
        "spilled_samples": stats.spilled_samples,
        "spill_writes": stats.spill_writes,
    }]))
    assert stats.peak_buffered_samples <= args.memory_budget
    print(f"  -> {len(ingested)} pairs in {fleet_dir} "
          f"({ingest_seconds:.2f}s; peak accumulator stayed within budget)\n")

    print("Surveying the original in-memory fleet...")
    reference = run_survey(fleet)
    print(f"Surveying the ingested directory (workers={args.workers})...")
    recorded = run_survey(ingested, workers=args.workers)

    # Bit-identical records, aligned by (metric, device): the ingested
    # manifest lists pairs in canonical order, the fleet in seeded order.
    by_key = {(r.metric_name, r.device_id): r for r in reference.records}
    for record in recorded.records:
        expected = by_key.pop((record.metric_name, record.device_id))
        assert record.nyquist_rate == expected.nyquist_rate
        assert record.category is expected.category
        assert (record.reduction_ratio == expected.reduction_ratio
                or (np.isnan(record.reduction_ratio)
                    and np.isnan(expected.reduction_ratio)))
    assert not by_key
    print("OK: ingested records are bit-identical to the in-memory survey\n")

    print("=== Headline statistics (Section 3.2, from the ingested dump) ===")
    print(format_table([{"statistic": key, "value": value}
                        for key, value in recorded.headline().items()]))

    print(f"\nThe dump and fleet directory persist under {work_dir}; re-run with:")
    print(f"  repro-monitor ingest {dump} NEW_DIR && "
          "repro-monitor survey --from-dir NEW_DIR")


if __name__ == "__main__":
    main()
