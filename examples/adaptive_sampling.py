"""Adaptive sampling: tracking a metric whose Nyquist rate changes over time.

The paper's Section 4.2 uses a flapping link (a burst of FCS errors) as the
motivating scenario: the metric is quiet for hours, then an episode makes
it vary quickly, then it quiets down again.  A fixed sampling rate must be
provisioned for the worst case; the adaptive controller probes with
dual-frequency sampling, ramps up when aliasing is detected and backs off
afterwards.

This example builds such a trace explicitly (quiet -> fast oscillation ->
quiet), runs the controller, and prints the per-window sampling decisions
(the Figure 7 view) plus the cost comparison against always sampling at the
rate the busy period needs.

Run with:  python examples/adaptive_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import AdaptiveSamplingController, ControllerConfig, compare, reconstruct
from repro.signals import TimeSeries
from repro.signals.generators import multi_tone
from repro.signals.noise import add_white_noise


def build_flap_trace(rng: np.random.Generator) -> TimeSeries:
    """A 24 h FCS-error-like signal: quiet, then a 6 h fast-varying episode, then quiet."""
    rate = 1.0 / 5.0           # reference sampled every 5 s
    quiet_a = multi_tone([1.0 / 7200.0], duration=9 * 3600.0, sampling_rate=rate,
                         amplitudes=[2.0], offset=3.0)
    busy = multi_tone([1.0 / 7200.0, 1.0 / 120.0], duration=4 * 3600.0, sampling_rate=rate,
                      amplitudes=[2.0, 8.0], offset=12.0)
    quiet_b = multi_tone([1.0 / 7200.0], duration=11 * 3600.0, sampling_rate=rate,
                         amplitudes=[2.0], offset=3.0)
    trace = quiet_a.concatenate(busy).concatenate(quiet_b).with_name("fcs-errors/flap")
    return add_white_noise(trace, std=0.01, rng=rng)


def main() -> None:
    rng = np.random.default_rng(11)
    reference = build_flap_trace(rng)
    print(f"Reference trace: {len(reference)} samples over {reference.duration / 3600:.0f} h "
          f"(sampled every {reference.interval:g} s)")

    config = ControllerConfig(
        initial_rate=1.0 / 1800.0,      # start polling twice an hour
        max_rate=reference.sampling_rate,
        probe_multiplier=3.0,
        headroom=1.3,
        aliasing_check_interval=2,      # dual-frequency check every other window
    )
    controller = AdaptiveSamplingController(config)
    run = controller.run(reference, window_duration=3600.0)

    rows = [{
        "hour": f"{decision.window_start / 3600.0:04.1f}",
        "mode": decision.mode.value,
        "rate (1/s)": decision.sampling_rate,
        "samples": decision.samples_collected,
        "aliased": decision.aliased,
        "inferred Nyquist (Hz)": decision.nyquist_estimate,
    } for decision in run.decisions]
    print()
    print(format_table(rows))

    # Cost comparison: the busy period needs sampling at twice the 1/120 Hz
    # oscillation; a fixed-rate system provisioned for that pays it all day.
    busy_rate = 2.0 * (1.0 / 120.0) * config.headroom
    fixed_samples = int(reference.duration * busy_rate)
    print()
    print(f"Fixed-rate system provisioned for the busy period: {fixed_samples} samples/day")
    print(f"Adaptive controller collected:                     {run.total_samples_collected} samples/day")
    print(f"Saving: {fixed_samples / max(run.total_samples_collected, 1):.1f}x")

    reconstruction = reconstruct(run.collected_series(), reference.sampling_rate)
    error = compare(reference, reconstruction)
    print(f"Reconstruction NRMSE against the full-rate reference: {error.nrmse:.3f}")


if __name__ == "__main__":
    main()
