"""Quickstart: estimate the Nyquist rate of a monitored metric and act on it.

This walks through the paper's core workflow on a single trace:

1. generate a day of synthetic switch-temperature telemetry the way a
   production poller would collect it (one sample every 5 minutes);
2. estimate its Nyquist rate with the Section 3.2 method;
3. down-sample the trace to that rate and reconstruct it with the low-pass
   interpolator of Section 4.3;
4. report how many samples were saved and how close the reconstruction is
   to the original (the Figure 6 experiment in miniature).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import NyquistEstimator, nyquist_round_trip
from repro.core.quantization import UniformQuantizer
from repro.telemetry import METRIC_CATALOG, DeviceProfile, DeviceRole, draw_metric_parameters
from repro.telemetry.models import generate_trace


def main() -> None:
    spec = METRIC_CATALOG["Temperature"]
    device = DeviceProfile(device_id="tor-0042", role=DeviceRole.TOR_SWITCH, seed=7)
    duration = 86400.0  # one day, as in the paper's survey

    params = draw_metric_parameters(spec, device, duration, broadband_fraction=0.0,
                                    rng=np.random.default_rng(7))
    trace = generate_trace(spec, params, duration, rng=np.random.default_rng(7),
                           device_name=device.device_id)
    print(f"Trace: {trace.name}, {len(trace)} samples at one every {trace.interval:g}s")

    estimator = NyquistEstimator(energy_fraction=0.99)
    estimate = estimator.estimate(trace)
    print(f"Estimated Nyquist rate: {estimate.nyquist_rate:.3e} Hz "
          f"(current rate {estimate.current_rate:.3e} Hz)")
    print(f"The metric is over-sampled by a factor of {estimate.reduction_ratio:.0f}x")

    quantizer = UniformQuantizer(step=spec.quantization_step,
                                 minimum=spec.minimum, maximum=spec.maximum)
    result = nyquist_round_trip(trace, estimator=estimator, quantizer=quantizer)
    print(f"Down-sampled to {len(result.downsampled)} samples "
          f"({result.reduction_factor:.0f}x fewer)")
    print(f"Reconstruction error: L2={result.error.l2:.4g}, "
          f"NRMSE={result.error.nrmse:.4g}, max|e|={result.error.max_abs:.4g} {spec.units}")

    if result.error.max_abs <= spec.quantization_step:
        print("Reconstruction is within one quantisation step everywhere: "
              "sampling at the Nyquist rate loses nothing the sensor could express.")


if __name__ == "__main__":
    main()
