"""Ergodicity and canarying: when does watching a few devices stand in for the fleet?

Section 6 of the paper ("Beyond Nyquist") asks whether datacenter metrics
are ergodic -- whether the statistics of one device over time match the
statistics of the whole fleet at an instant -- because canarying implicitly
assumes they are.  This example builds a fleet of CPU-utilisation traces,
measures the ergodicity gap as a function of observation time, and
estimates the smallest canary whose mean tracks the fleet mean.

Run with:  python examples/ergodicity_canary.py [--devices N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import format_table
from repro.core import (ensemble_statistics, ergodicity_report, minimum_canary_size,
                        time_statistics)
from repro.telemetry import METRIC_CATALOG, build_fleet, draw_metric_parameters
from repro.telemetry.models import generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=40)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    spec = METRIC_CATALOG["5-pct CPU util"]
    duration = 86400.0
    fleet_profiles = build_fleet(args.devices, seed=args.seed)

    traces = []
    for profile in fleet_profiles:
        params = draw_metric_parameters(spec, profile, duration, broadband_fraction=0.0,
                                        rng=np.random.default_rng(profile.seed))
        traces.append(generate_trace(spec, params, duration,
                                     rng=np.random.default_rng(profile.seed),
                                     device_name=profile.device_id))

    ensemble = ensemble_statistics(traces)
    single = time_statistics(traces[0])
    print(f"Fleet of {len(traces)} devices, metric: {spec.name}")
    print(f"Ensemble (fleet at one instant): mean={ensemble['mean']:.1f}%, p95={ensemble['p95']:.1f}%")
    print(f"Device 0 over one day:           mean={single['mean']:.1f}%, p95={single['p95']:.1f}%")

    report = ergodicity_report(traces, device_index=0,
                               fractions=(0.05, 0.1, 0.25, 0.5, 1.0))
    rows = [{"observation_hours": duration_s / 3600.0, "relative_gap": gap}
            for duration_s, gap in zip(report.durations, report.gaps)]
    print("\nErgodicity gap (|device time-average - fleet mean| / fleet mean):")
    print(format_table(rows))
    converged = report.converged_duration(tolerance=0.15)
    if converged is None:
        print("This device's time average never comes within 15% of the fleet mean: "
              "canary results from it would not generalise.")
    else:
        print(f"Within 15% of the fleet mean after {converged / 3600.0:.1f} h of observation.")

    size = minimum_canary_size(traces, tolerance=0.05, rng=np.random.default_rng(1))
    print("\nSmallest canary whose instantaneous mean stays within 5% of the fleet mean "
          f"(worst case over 20 random draws): {size} of {len(traces)} devices")


if __name__ == "__main__":
    main()
