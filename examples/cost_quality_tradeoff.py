"""Cost vs. quality at fleet scale: pricing three sampling policies on a fabric.

This is the experiment behind the paper's title, run through the
fleet-scale policy survey.  We build a leaf-spine datacenter, deploy the
standard monitoring metrics on its switches and servers, and compare three
ways of sampling every (metric, device) pair:

* the fixed-rate baseline (today's ad-hoc polling interval),
* the Nyquist-static policy (calibrate once, then poll at the Nyquist rate),
* the adaptive dual-frequency policy of Section 4.

``run_policy_survey`` evaluates the whole fleet through the batched policy
engine (one spectral-calibration call and one FFT reconstruction pair per
trace batch), prices every point with the hop-weighted
collection/transmission/storage/analysis cost model, and scales exactly
like the Nyquist survey: ``--workers`` fans the evaluation out to a
process pool (byte-identical records) and ``--spill-dir`` streams the
per-point record blocks to disk so memory stays bounded.

For per-point event-detection scoring (injected fail-stop steps and the
detection-latency columns), see ``repro.pipeline.CostQualityEvaluator`` --
the per-trace driver behind the same columnar records.

Run with:  python examples/cost_quality_tradeoff.py [--leaves N] [--workers N]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis import format_table, run_policy_survey
from repro.network import DeploymentSpec, TopologySpec
from repro.pipeline import PolicySuite
from repro.records import SpillingRecordSink


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spines", type=int, default=2)
    parser.add_argument("--leaves", type=int, default=4)
    parser.add_argument("--servers-per-leaf", type=int, default=4)
    parser.add_argument("--duration-hours", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=19)
    parser.add_argument("--workers", type=int, default=1,
                        help=">= 2 fans the evaluation out to a process pool")
    parser.add_argument("--spill-dir", type=Path, default=None,
                        help="stream record blocks to disk (out-of-core run)")
    args = parser.parse_args()

    spec = DeploymentSpec(
        topology=TopologySpec(num_spines=args.spines, num_leaves=args.leaves,
                              servers_per_leaf=args.servers_per_leaf),
        trace_duration=args.duration_hours * 3600.0,
        seed=args.seed,
        oversample_factor=4.0)
    source = spec.open()
    accountant = source.accountant()
    suite = PolicySuite(production_oversample=4.0, adaptive_window=4 * 3600.0)

    sink = SpillingRecordSink(args.spill_dir) if args.spill_dir is not None else None
    result = run_policy_survey(source, suite, accountant=accountant,
                               workers=args.workers, sink=sink)

    print(f"Evaluated {len(source)} measurement points on a "
          f"{len(source.deployment.topology)}-node leaf-spine fabric "
          f"(collector at {source.collector})\n")
    print(format_table(result.rows()))
    print()
    relative = result.relative_costs("fixed")
    print("Total monitoring cost relative to the fixed-rate baseline:")
    for policy, fraction in relative.items():
        print(f"  {policy:22s} {fraction:.2f}x")
    if args.spill_dir is not None:
        print(f"\nRecord chunks spilled to {args.spill_dir} "
              f"({len(result.sink.files)} files)")


if __name__ == "__main__":
    main()
