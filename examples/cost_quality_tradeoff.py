"""Cost vs. quality: pricing three sampling policies on a leaf-spine fabric.

This is the experiment behind the paper's title.  We build a small
leaf-spine datacenter, deploy the standard monitoring metrics on its
switches and servers, and compare three ways of sampling them:

* the fixed-rate baseline (today's ad-hoc polling interval),
* the Nyquist-static policy (calibrate once, then poll at the Nyquist rate),
* the adaptive dual-frequency policy of Section 4.

Each policy is priced with the collection/transmission/storage/analysis
cost model and scored on reconstruction fidelity and on how quickly it
detects an injected fail-stop event.

Run with:  python examples/cost_quality_tradeoff.py [--points N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import format_table
from repro.network import (MonitoringDeployment, TelemetryCostAccountant, TopologySpec,
                           attach_collector, build_leaf_spine)
from repro.pipeline import (AdaptiveDualRatePolicy, CostQualityEvaluator, EventKind,
                            FixedRatePolicy, NyquistStaticPolicy, inject_event)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8,
                        help="measurement points to evaluate per metric")
    parser.add_argument("--metrics", nargs="*", default=["Link util", "Temperature", "FCS errors"])
    parser.add_argument("--seed", type=int, default=19)
    args = parser.parse_args()

    topology = build_leaf_spine(TopologySpec(num_spines=2, num_leaves=4, servers_per_leaf=4))
    collector = attach_collector(topology)
    deployment = MonitoringDeployment(topology, trace_duration=43200.0, seed=args.seed)
    accountant = TelemetryCostAccountant(topology=topology, collector=collector)

    rng = np.random.default_rng(args.seed)
    policies = [
        FixedRatePolicy(30.0, name="baseline-30s"),
        NyquistStaticPolicy(production_interval=30.0),
        AdaptiveDualRatePolicy(window_duration=2 * 3600.0),
    ]
    evaluator = CostQualityEvaluator(policies, accountant=accountant)

    evaluated = 0
    for metric in args.metrics:
        for point, reference in deployment.iter_reference_traces(metric, limit=args.points):
            event_time = reference.start_time + float(rng.uniform(0.5, 0.9)) * reference.duration
            magnitude = 6.0 * reference.std() + 1.0
            modified, event = inject_event(reference, EventKind.STEP, event_time, magnitude)
            evaluator.evaluate_point(point.node, metric, modified, event)
            evaluated += 1

    print(f"Evaluated {evaluated} measurement points on a "
          f"{len(topology)}-node leaf-spine fabric\n")
    print(format_table(evaluator.rows()))
    print()
    relative = evaluator.relative_costs("baseline-30s")
    print("Total monitoring cost relative to the fixed-rate baseline:")
    for policy, fraction in relative.items():
        print(f"  {policy:22s} {fraction:.2f}x")


if __name__ == "__main__":
    main()
