"""Measured-trace fleet survey: analyse recorded telemetry, not a generator.

The paper's survey runs over *measured* production traces.  This example
shows the full measured-data loop on a fleet you can regenerate anywhere:

1. build a synthetic fleet and **export** it to a directory of per-pair
   trace files (npz or csv) plus a ``manifest.json`` -- the stand-in for a
   directory of recorded production telemetry;
2. re-open that directory as a :class:`MeasuredFleetDataset` and run the
   exact same ``run_survey`` pipeline on it (batched engine, optional
   worker pool and spill sink) -- worker batch specs become file-offset
   slices of the manifest;
3. verify the measured-path records are **byte-identical** to the
   in-memory survey of the original dataset, and compare throughput.

Run with:  python examples/measured_survey.py [--pairs N] [--workers N]

To survey your own recordings, lay them out in the same directory format
(see repro.telemetry.measured) and point ``--dir`` at it -- or use the
CLI: ``repro-monitor export-fleet DIR`` / ``repro-monitor survey
--from-dir DIR``.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table, run_survey
from repro.telemetry import DatasetConfig, FleetDataset, MeasuredFleetDataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=280,
                        help="number of metric-device pairs (paper: 1613)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2,
                        help="survey worker processes for the measured run")
    parser.add_argument("--trace-format", choices=["npz", "csv"], default="npz",
                        help="per-pair trace file format")
    parser.add_argument("--dir", type=Path, default=None,
                        help="fleet directory (default: a fresh temp directory)")
    args = parser.parse_args()

    fleet_dir = args.dir or Path(tempfile.mkdtemp(prefix="measured-fleet-"))

    if (fleet_dir / "manifest.json").exists():
        # An existing recording: survey it directly (no synthetic reference
        # to compare against, so skip the export and the byte-identity check).
        measured = MeasuredFleetDataset(fleet_dir)
        print(f"Surveying existing measured fleet at {fleet_dir} "
              f"({len(measured)} recorded pairs, workers={args.workers})...")
        start = time.perf_counter()
        recorded = run_survey(measured, workers=args.workers)
        measured_seconds = time.perf_counter() - start
        print(f"  {len(recorded)} pairs in {measured_seconds:.2f}s "
              f"({len(recorded) / measured_seconds:.0f} pairs/s)\n")
        print("=== Headline statistics (Section 3.2, from the recorded fleet) ===")
        print(format_table([{"statistic": key, "value": value}
                            for key, value in recorded.headline().items()]))
        return

    dataset = FleetDataset(DatasetConfig(pair_count=args.pairs, seed=args.seed))

    print(f"Exporting {args.pairs} pairs to {fleet_dir} ({args.trace_format} traces)...")
    start = time.perf_counter()
    measured = dataset.export(fleet_dir, fmt=args.trace_format)
    export_seconds = time.perf_counter() - start
    trace_files = sorted((fleet_dir / "traces").iterdir())
    trace_bytes = sum(path.stat().st_size for path in trace_files)
    print(f"  wrote {len(trace_files)} trace files ({trace_bytes / 2 ** 20:.1f} MiB) "
          f"+ manifest.json in {export_seconds:.2f}s\n")

    print("Surveying the in-memory (generated) dataset...")
    start = time.perf_counter()
    generated = run_survey(dataset)
    generated_seconds = time.perf_counter() - start

    print(f"Surveying the measured directory (workers={args.workers})...")
    start = time.perf_counter()
    recorded = run_survey(measured, workers=args.workers)
    measured_seconds = time.perf_counter() - start

    # The measured path must reproduce the in-memory survey byte for byte.
    generated_blocks = list(generated.iter_blocks())
    recorded_blocks = list(recorded.iter_blocks())
    assert len(generated_blocks) == len(recorded_blocks)
    for a, b in zip(generated_blocks, recorded_blocks):
        assert a.metric_name == b.metric_name
        assert np.array_equal(a.device_ids, b.device_ids)
        assert np.array_equal(a.nyquist_rate, b.nyquist_rate)
        assert np.array_equal(a.reduction_ratio, b.reduction_ratio, equal_nan=True)
        assert np.array_equal(a.category, b.category)
    assert generated.headline() == recorded.headline()
    print("OK: measured-path records are byte-identical to the in-memory survey\n")

    print("=== Throughput: generated vs measured ===")
    print(format_table([
        {"path": "generated (in-memory)", "workers": 1, "seconds": generated_seconds,
         "pairs_per_second": len(generated) / generated_seconds},
        {"path": f"measured ({args.trace_format} files)", "workers": args.workers,
         "seconds": measured_seconds,
         "pairs_per_second": len(recorded) / measured_seconds},
    ]))

    print("\n=== Headline statistics (Section 3.2, from the recorded fleet) ===")
    print(format_table([{"statistic": key, "value": value}
                        for key, value in recorded.headline().items()]))

    print(f"\nThe fleet directory persists at {fleet_dir}; re-survey it any time with:")
    print(f"  repro-monitor survey --from-dir {fleet_dir} --workers {args.workers}")


if __name__ == "__main__":
    main()
