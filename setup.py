"""Setuptools shim.

The offline environment this repository targets has setuptools but not the
``wheel`` package, so PEP 517 editable installs (which need to build an
editable wheel) fail.  Keeping a ``setup.py`` lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which works offline.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
